/// \file source.hpp
/// \brief Stream sources: generator-driven, in-memory replay, and CSV.
///
/// A source fills tuple buffers on demand. Sources are pull-based — the
/// query's pipeline thread asks for the next buffer — which gives natural
/// backpressure on constrained devices. Event time comes from the records
/// themselves; sources stamp each buffer's watermark with the maximum event
/// time they have produced.

#pragma once

#include <algorithm>
#include <functional>

#include "nebula/expr.hpp"
#include "nebula/tuple_buffer.hpp"

namespace nebulameos::nebula {

/// \brief Shared event-time and sequence bookkeeping for sources.
///
/// Every source stamps each outgoing buffer with a monotonically
/// increasing sequence number and — when an event-time field is
/// configured — a watermark equal to the maximum event time produced so
/// far. This helper centralises that state (previously copy-pasted across
/// the concrete sources): resolve the time field once, observe each
/// written record, stamp each buffer.
class StreamStamper {
 public:
  StreamStamper() = default;

  /// Resolves \p time_field against \p schema ("" or an unknown name
  /// disables watermarking).
  StreamStamper(const Schema& schema, const std::string& time_field) {
    if (time_field.empty()) return;
    auto idx = schema.IndexOf(time_field);
    if (idx.ok()) time_index_ = static_cast<int>(*idx);
  }

  /// Tracks the event time of a just-written record.
  void Observe(const RecordView& rec) {
    if (time_index_ >= 0) {
      max_time_ = std::max(max_time_, rec.GetInt64(time_index_));
    }
  }

  /// Stamps \p buffer with the next sequence number and, when
  /// watermarking, the current high-water event time.
  void Stamp(TupleBuffer* buffer) {
    buffer->set_sequence_number(next_sequence_++);
    if (time_index_ >= 0) buffer->set_watermark(max_time_);
  }

 private:
  int time_index_ = -1;
  Timestamp max_time_ = 0;
  uint64_t next_sequence_ = 0;
};

/// \brief Abstract pull-based source.
class Source {
 public:
  virtual ~Source() = default;

  /// Schema of produced records.
  virtual const Schema& schema() const = 0;

  /// Fills \p buffer with up to its capacity of records.
  /// Returns false when the stream is exhausted (buffer may still contain a
  /// final partial batch).
  virtual Result<bool> Fill(TupleBuffer* buffer) = 0;

  /// Human-readable name for logs and plans.
  virtual std::string name() const { return "Source"; }

  /// Declares this source an instance of a *named logical source*
  /// (NebulaStream's cross-query identity): two sources carrying the same
  /// logical name assert they produce the same stream, which lets the
  /// serving layer merge independently submitted plans over one physical
  /// ingest. Sources without a logical name are never shared.
  void SetLogicalName(std::string name) { logical_name_ = std::move(name); }
  /// The declared logical-source name ("" = unnamed, unshareable).
  const std::string& logical_name() const { return logical_name_; }

  /// Sharing signature: empty for unnamed sources (never shareable),
  /// otherwise the logical name qualified by the produced schema so two
  /// same-named sources with diverging schemas cannot be merged.
  virtual std::string Signature() const {
    if (logical_name_.empty()) return std::string();
    return logical_name_ + "|" + schema().ToString();
  }

 private:
  std::string logical_name_;
};

using SourcePtr = std::unique_ptr<Source>;

/// \brief Source driven by a record-producing callback.
///
/// The generator writes one record per call and returns false when the
/// stream ends. An optional event-time field is tracked for watermarking.
class GeneratorSource : public Source {
 public:
  /// Writes one record; returns false to end the stream.
  using GenerateFn = std::function<bool(RecordWriter*)>;

  /// \p max_events bounds the stream (0 = unbounded, generator decides);
  /// \p time_field names the event-time field used for buffer watermarks
  /// ("" = no watermarking).
  GeneratorSource(Schema schema, GenerateFn generate, uint64_t max_events = 0,
                  std::string time_field = "");

  const Schema& schema() const override { return schema_; }
  Result<bool> Fill(TupleBuffer* buffer) override;
  std::string name() const override { return "GeneratorSource"; }

  /// Events produced so far.
  uint64_t produced() const { return produced_; }

 private:
  Schema schema_;
  GenerateFn generate_;
  uint64_t max_events_;
  uint64_t produced_ = 0;
  StreamStamper stamper_;
  bool done_ = false;
};

/// \brief Replays records stored in memory (supports repeating the data set
/// multiple times — used by throughput benchmarks).
class MemorySource : public Source {
 public:
  /// \p rounds full repetitions of \p data (>=1).
  MemorySource(Schema schema, std::vector<std::vector<Value>> data,
               size_t rounds = 1, std::string time_field = "");

  const Schema& schema() const override { return schema_; }
  Result<bool> Fill(TupleBuffer* buffer) override;
  std::string name() const override { return "MemorySource"; }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> data_;
  size_t rounds_;
  size_t round_ = 0;
  size_t pos_ = 0;
  StreamStamper stamper_;
};

/// \brief Rate-paces an inner source to a target events/second (token
/// bucket over the wall clock).
///
/// Benchmarks use this to reproduce *offered load*: the paper reports the
/// rates its edge device ingested; pacing the simulator to those rates
/// shows whether the engine sustains them (and with how much headroom).
class PacedSource : public Source {
 public:
  /// Wraps \p inner, emitting at most \p events_per_second.
  PacedSource(SourcePtr inner, double events_per_second);

  const Schema& schema() const override { return inner_->schema(); }
  Result<bool> Fill(TupleBuffer* buffer) override;
  std::string name() const override { return "PacedSource"; }

 private:
  SourcePtr inner_;
  double events_per_second_;
  int64_t started_at_ = 0;
  uint64_t released_ = 0;
};

/// \brief Reads CSV rows (header optional) into records by schema order.
class CsvSource : public Source {
 public:
  /// Opens \p path; fails when the file is missing. \p skip_header drops
  /// the first line.
  static Result<SourcePtr> Open(Schema schema, const std::string& path,
                                bool skip_header = true,
                                std::string time_field = "");

  ~CsvSource() override;
  const Schema& schema() const override { return schema_; }
  Result<bool> Fill(TupleBuffer* buffer) override;
  std::string name() const override { return "CsvSource"; }

 private:
  CsvSource(Schema schema, FILE* file, const std::string& time_field)
      : schema_(std::move(schema)),
        file_(file),
        stamper_(schema_, time_field) {}

  Schema schema_;
  FILE* file_;
  StreamStamper stamper_;
};

}  // namespace nebulameos::nebula

/// \file source.hpp
/// \brief Stream sources: generator-driven, in-memory replay, and CSV.
///
/// A source fills tuple buffers on demand. Sources are pull-based — the
/// query's pipeline thread asks for the next buffer — which gives natural
/// backpressure on constrained devices. Event time comes from the records
/// themselves; sources stamp each buffer's watermark with the maximum event
/// time they have produced.

#pragma once

#include <functional>

#include "nebula/expr.hpp"
#include "nebula/tuple_buffer.hpp"

namespace nebulameos::nebula {

/// \brief Abstract pull-based source.
class Source {
 public:
  virtual ~Source() = default;

  /// Schema of produced records.
  virtual const Schema& schema() const = 0;

  /// Fills \p buffer with up to its capacity of records.
  /// Returns false when the stream is exhausted (buffer may still contain a
  /// final partial batch).
  virtual Result<bool> Fill(TupleBuffer* buffer) = 0;

  /// Human-readable name for logs and plans.
  virtual std::string name() const { return "Source"; }
};

using SourcePtr = std::unique_ptr<Source>;

/// \brief Source driven by a record-producing callback.
///
/// The generator writes one record per call and returns false when the
/// stream ends. An optional event-time field is tracked for watermarking.
class GeneratorSource : public Source {
 public:
  /// Writes one record; returns false to end the stream.
  using GenerateFn = std::function<bool(RecordWriter*)>;

  /// \p max_events bounds the stream (0 = unbounded, generator decides);
  /// \p time_field names the event-time field used for buffer watermarks
  /// ("" = no watermarking).
  GeneratorSource(Schema schema, GenerateFn generate, uint64_t max_events = 0,
                  std::string time_field = "");

  const Schema& schema() const override { return schema_; }
  Result<bool> Fill(TupleBuffer* buffer) override;
  std::string name() const override { return "GeneratorSource"; }

  /// Events produced so far.
  uint64_t produced() const { return produced_; }

 private:
  Schema schema_;
  GenerateFn generate_;
  uint64_t max_events_;
  uint64_t produced_ = 0;
  int time_index_ = -1;
  Timestamp max_time_ = 0;
  uint64_t next_sequence_ = 0;
  bool done_ = false;
};

/// \brief Replays records stored in memory (supports repeating the data set
/// multiple times — used by throughput benchmarks).
class MemorySource : public Source {
 public:
  /// \p rounds full repetitions of \p data (>=1).
  MemorySource(Schema schema, std::vector<std::vector<Value>> data,
               size_t rounds = 1, std::string time_field = "");

  const Schema& schema() const override { return schema_; }
  Result<bool> Fill(TupleBuffer* buffer) override;
  std::string name() const override { return "MemorySource"; }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> data_;
  size_t rounds_;
  size_t round_ = 0;
  size_t pos_ = 0;
  int time_index_ = -1;
  Timestamp max_time_ = 0;
  uint64_t next_sequence_ = 0;
};

/// \brief Rate-paces an inner source to a target events/second (token
/// bucket over the wall clock).
///
/// Benchmarks use this to reproduce *offered load*: the paper reports the
/// rates its edge device ingested; pacing the simulator to those rates
/// shows whether the engine sustains them (and with how much headroom).
class PacedSource : public Source {
 public:
  /// Wraps \p inner, emitting at most \p events_per_second.
  PacedSource(SourcePtr inner, double events_per_second);

  const Schema& schema() const override { return inner_->schema(); }
  Result<bool> Fill(TupleBuffer* buffer) override;
  std::string name() const override { return "PacedSource"; }

 private:
  SourcePtr inner_;
  double events_per_second_;
  int64_t started_at_ = 0;
  uint64_t released_ = 0;
};

/// \brief Reads CSV rows (header optional) into records by schema order.
class CsvSource : public Source {
 public:
  /// Opens \p path; fails when the file is missing. \p skip_header drops
  /// the first line.
  static Result<SourcePtr> Open(Schema schema, const std::string& path,
                                bool skip_header = true,
                                std::string time_field = "");

  ~CsvSource() override;
  const Schema& schema() const override { return schema_; }
  Result<bool> Fill(TupleBuffer* buffer) override;
  std::string name() const override { return "CsvSource"; }

 private:
  CsvSource(Schema schema, FILE* file, std::string time_field)
      : schema_(std::move(schema)),
        file_(file),
        time_field_(std::move(time_field)) {}

  Schema schema_;
  FILE* file_;
  std::string time_field_;
  int time_index_ = -1;
  Timestamp max_time_ = 0;
  uint64_t next_sequence_ = 0;
  bool resolved_time_ = false;
};

}  // namespace nebulameos::nebula

#include "nebula/worker_pool.hpp"

namespace nebulameos::nebula {

WorkerPool::WorkerPool(size_t workers, size_t strand_capacity,
                       ShedPolicy shed_policy)
    : strand_capacity_(strand_capacity), shed_policy_(shed_policy) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  ready_cv_.NotifyAll();
  space_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

std::unique_ptr<WorkerPool::Strand> WorkerPool::MakeStrand() {
  return std::unique_ptr<Strand>(new Strand(this));
}

void WorkerPool::Strand::Post(std::function<void()> task) {
  pool_->Post(this, std::move(task));
}

void WorkerPool::Post(Strand* strand, std::function<void()> task) {
  // Destroyed after the lock releases: shedding the oldest morsel drops
  // its captured buffer handles, whose recycling must not run under the
  // pool mutex.
  std::function<void()> shed;
  MutexLock lock(mutex_);
  // Only external threads honour the bound: a worker blocking on a full
  // strand could leave every worker blocked with no one left to drain.
  if (strand_capacity_ > 0 && !OnWorkerThread()) {
    if (shed_policy_ == ShedPolicy::kBlock) {
      while (strand->tasks_.size() >= strand_capacity_ && !stop_) {
        space_cv_.Wait(mutex_);
      }
    } else if (strand->tasks_.size() >= strand_capacity_ && !stop_) {
      // Degradation instead of backpressure: make room by policy.
      tasks_shed_.fetch_add(1, std::memory_order_relaxed);
      if (shed_policy_ == ShedPolicy::kDropLate) return;
      shed = std::move(strand->tasks_.front());  // kDropOldest
      strand->tasks_.pop_front();
      if (--pending_ == 0) drained_cv_.NotifyAll();
    }
  }
  if (stop_) return;
  strand->tasks_.push_back(std::move(task));
  ++pending_;
  if (!strand->scheduled_) {
    strand->scheduled_ = true;
    ready_.push_back(strand);
    ready_cv_.NotifyOne();
  }
}

void WorkerPool::Drain() {
  MutexLock lock(mutex_);
  while (pending_ != 0) drained_cv_.Wait(mutex_);
}

bool WorkerPool::OnWorkerThread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& t : threads_) {
    if (t.get_id() == self) return true;
  }
  return false;
}

void WorkerPool::WorkerMain() {
  MutexLock lock(mutex_);
  for (;;) {
    while (ready_.empty() && !stop_) ready_cv_.Wait(mutex_);
    if (ready_.empty()) {
      if (stop_) return;  // shutdown only once every queue is dry
      continue;
    }
    Strand* strand = ready_.front();
    ready_.pop_front();
    std::function<void()> task = std::move(strand->tasks_.front());
    strand->tasks_.pop_front();
    lock.Unlock();
    task();
    // Destroy the task before acknowledging completion, so Drain() implies
    // captured buffer handles have recycled into their pools.
    task = nullptr;
    lock.Lock();
    if (strand->tasks_.empty()) {
      strand->scheduled_ = false;
    } else {
      ready_.push_back(strand);  // requeue at the back: strand fairness
      ready_cv_.NotifyOne();
    }
    if (--pending_ == 0) drained_cv_.NotifyAll();
    if (strand_capacity_ > 0) space_cv_.NotifyAll();
  }
}

}  // namespace nebulameos::nebula

/// \file tuple_buffer.hpp
/// \brief Fixed-size tuple buffers and typed record accessors.
///
/// The unit of data flow in the engine: a `TupleBuffer` owns a fixed byte
/// region holding `capacity` fixed-size records of one schema, plus stream
/// metadata (sequence number, watermark). `RecordView` / `RecordWriter`
/// provide typed, offset-computed access to one record. Buffers are pooled
/// by `BufferManager` (see buffer_manager.hpp) so steady-state processing
/// performs no allocation — the property that lets NebulaStream run on
/// constrained edge devices.

#pragma once

#include <cassert>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nebula/schema.hpp"

namespace nebulameos::nebula {

class TupleBuffer;

/// \brief Read-only view of one record inside a buffer.
class RecordView {
 public:
  RecordView(const Schema* schema, const uint8_t* base)
      : schema_(schema), base_(base) {}

  /// The record's schema.
  const Schema& schema() const { return *schema_; }

  /// Reads field \p i as bool (type must be kBool).
  bool GetBool(size_t i) const { return base_[schema_->offset(i)] != 0; }

  /// Reads field \p i as int64 (kInt64 or kTimestamp).
  int64_t GetInt64(size_t i) const {
    int64_t v;
    std::memcpy(&v, base_ + schema_->offset(i), sizeof(v));
    return v;
  }

  /// Reads field \p i as double (kDouble).
  double GetDouble(size_t i) const {
    double v;
    std::memcpy(&v, base_ + schema_->offset(i), sizeof(v));
    return v;
  }

  /// Reads a text field (kText16/kText32) as a string (stops at NUL).
  std::string GetText(size_t i) const {
    const size_t cap = DataTypeSize(schema_->field(i).type);
    const char* p = reinterpret_cast<const char*>(base_ + schema_->offset(i));
    size_t len = 0;
    while (len < cap && p[len] != '\0') ++len;
    return std::string(p, len);
  }

  /// Numeric read with implicit widening: int64/timestamp → double.
  double GetNumeric(size_t i) const {
    return schema_->field(i).type == DataType::kDouble
               ? GetDouble(i)
               : static_cast<double>(GetInt64(i));
  }

  /// Raw pointer to the record bytes.
  const uint8_t* data() const { return base_; }

 private:
  const Schema* schema_;
  const uint8_t* base_;
};

/// \brief Mutable accessor for one record inside a buffer.
class RecordWriter {
 public:
  RecordWriter(const Schema* schema, uint8_t* base)
      : schema_(schema), base_(base) {}

  void SetBool(size_t i, bool v) { base_[schema_->offset(i)] = v ? 1 : 0; }

  void SetInt64(size_t i, int64_t v) {
    std::memcpy(base_ + schema_->offset(i), &v, sizeof(v));
  }

  void SetDouble(size_t i, double v) {
    std::memcpy(base_ + schema_->offset(i), &v, sizeof(v));
  }

  /// Writes a text field, truncating to the field width; NUL-pads.
  void SetText(size_t i, const std::string& v) {
    const size_t cap = DataTypeSize(schema_->field(i).type);
    char* p = reinterpret_cast<char*>(base_ + schema_->offset(i));
    const size_t len = std::min(v.size(), cap);
    std::memcpy(p, v.data(), len);
    if (len < cap) std::memset(p + len, 0, cap - len);
  }

  /// Copies all fields from \p src (same schema layout required).
  void CopyFrom(const RecordView& src) {
    std::memcpy(base_, src.data(), schema_->record_size());
  }

  /// Read-only view of this record.
  RecordView View() const { return RecordView(schema_, base_); }

  uint8_t* data() { return base_; }

 private:
  const Schema* schema_;
  uint8_t* base_;
};

/// \brief A fixed-capacity run of records plus stream metadata.
class TupleBuffer {
 public:
  /// Creates a buffer for \p schema with room for \p capacity records.
  TupleBuffer(Schema schema, size_t capacity)
      : schema_(std::move(schema)),
        capacity_(capacity),
        bytes_(schema_.record_size() * capacity) {}

  const Schema& schema() const { return schema_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Bytes occupied by the current records.
  size_t SizeBytes() const { return size_ * schema_.record_size(); }

  /// Appends a record slot and returns a writer for it. Buffer must not be
  /// full.
  RecordWriter Append() {
    assert(!sealed_ && "append to a sealed buffer");
    RecordWriter w(&schema_, bytes_.data() + size_ * schema_.record_size());
    ++size_;
    return w;
  }

  /// Appends \p count records in one copy from \p src, which must point
  /// at contiguous records of this buffer's exact layout (e.g. a network
  /// frame payload). The records must fit: `size() + count <= capacity()`.
  void AppendRecords(const uint8_t* src, size_t count) {
    assert(!sealed_ && "append to a sealed buffer");
    std::memcpy(bytes_.data() + size_ * schema_.record_size(), src,
                count * schema_.record_size());
    size_ += count;
  }

  /// View of record \p i.
  RecordView At(size_t i) const {
    return RecordView(&schema_, bytes_.data() + i * schema_.record_size());
  }

  /// Writer for existing record \p i.
  RecordWriter MutableAt(size_t i) {
    assert(!sealed_ && "mutating a sealed buffer");
    return RecordWriter(&schema_, bytes_.data() + i * schema_.record_size());
  }

  /// Drops all records (metadata kept).
  void Clear() {
    assert(!sealed_ && "clearing a sealed buffer");
    size_ = 0;
  }

  /// Removes the most recently appended record (used by sources that
  /// discover end-of-stream after reserving a slot).
  void PopBack() {
    assert(!sealed_ && "mutating a sealed buffer");
    if (size_ > 0) --size_;
  }

  /// Resets records and metadata, lifting any seal (pool reuse).
  void Reset() {
    size_ = 0;
    sequence_number_ = 0;
    watermark_ = 0;
    sealed_ = false;
  }

  /// Marks the buffer immutable: any later append or in-place write is a
  /// contract violation (asserted in debug builds). The engine seals every
  /// buffer before pushing it into a pipeline — sealing is what lets a
  /// fan-out share one buffer across branches (with per-branch selection
  /// vectors) instead of copying it per branch. `Reset` lifts the seal
  /// when the pool recycles the buffer.
  void Seal() { sealed_ = true; }
  bool sealed() const { return sealed_; }

  /// Monotonic per-stream sequence number, set by sources.
  uint64_t sequence_number() const { return sequence_number_; }
  void set_sequence_number(uint64_t n) { sequence_number_ = n; }

  /// Event-time watermark carried by this buffer.
  Timestamp watermark() const { return watermark_; }
  void set_watermark(Timestamp w) { watermark_ = w; }

 private:
  Schema schema_;
  size_t capacity_;
  std::vector<uint8_t> bytes_;
  size_t size_ = 0;
  uint64_t sequence_number_ = 0;
  Timestamp watermark_ = 0;
  bool sealed_ = false;
};

/// Shared handle used across pipeline stages.
using TupleBufferPtr = std::shared_ptr<TupleBuffer>;

}  // namespace nebulameos::nebula

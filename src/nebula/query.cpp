#include "nebula/query.hpp"

namespace nebulameos::nebula {

Query Query::From(SourcePtr source) {
  Query q;
  q.plan_.SetSource(std::move(source));
  return q;
}

Query Query::Branch() { return Query(); }

void Query::Fail(const std::string& message) {
  if (error_.ok()) error_ = Status::InvalidArgument(message);
}

void Query::AppendStep(LogicalOperatorPtr node, const char* what) {
  if (pending_window_ != nullptr) {
    Fail(std::string(what) +
         " after a window that was not completed with Aggregate()");
    return;
  }
  plan_.Append(std::move(node));
}

void Query::SetPendingWindow(LogicalOperatorPtr node, const char* what) {
  if (pending_window_ != nullptr) {
    Fail(std::string(what) +
         " after a window that was not completed with Aggregate()");
    return;
  }
  pending_window_ = std::move(node);
}

Query&& Query::Filter(ExprPtr predicate) && {
  AppendStep(std::make_unique<FilterNode>(std::move(predicate)), "Filter");
  return std::move(*this);
}

Query&& Query::Map(std::string name, ExprPtr expr) && {
  std::vector<MapSpec> specs;
  specs.push_back({std::move(name), std::move(expr)});
  AppendStep(std::make_unique<MapNode>(std::move(specs)), "Map");
  return std::move(*this);
}

Query&& Query::MapAll(std::vector<MapSpec> specs) && {
  AppendStep(std::make_unique<MapNode>(std::move(specs)), "MapAll");
  return std::move(*this);
}

Query&& Query::Project(std::vector<std::string> fields) && {
  AppendStep(std::make_unique<ProjectNode>(std::move(fields)), "Project");
  return std::move(*this);
}

Query&& Query::KeyBy(std::string field) && {
  AppendStep(std::make_unique<KeyByNode>(std::move(field)), "KeyBy");
  return std::move(*this);
}

Query&& Query::TumblingWindow(Duration size, std::string time_field) && {
  WindowAggOptions options;
  options.window = TumblingWindowSpec{size};
  options.time_field = std::move(time_field);
  SetPendingWindow(std::make_unique<WindowAggNode>(std::move(options)),
                   "TumblingWindow");
  return std::move(*this);
}

Query&& Query::SlidingWindow(Duration size, Duration slide,
                             std::string time_field) && {
  WindowAggOptions options;
  options.window = SlidingWindowSpec{size, slide};
  options.time_field = std::move(time_field);
  SetPendingWindow(std::make_unique<WindowAggNode>(std::move(options)),
                   "SlidingWindow");
  return std::move(*this);
}

Query&& Query::ThresholdWindow(ExprPtr predicate, Duration min_duration,
                               std::string time_field) && {
  ThresholdWindowOptions options;
  options.predicate = std::move(predicate);
  options.min_duration = min_duration;
  options.time_field = std::move(time_field);
  SetPendingWindow(std::make_unique<ThresholdWindowNode>(std::move(options)),
                   "ThresholdWindow");
  return std::move(*this);
}

Query&& Query::Aggregate(std::vector<AggregateSpec> aggs,
                         std::vector<CustomAggregatorFactory> customs) && {
  if (pending_window_ == nullptr) {
    Fail("Aggregate() without a pending window "
         "(call TumblingWindow/SlidingWindow/ThresholdWindow first)");
    return std::move(*this);
  }
  if (pending_window_->kind() == LogicalOperator::Kind::kWindowAgg) {
    auto& options =
        static_cast<WindowAggNode&>(*pending_window_).mutable_options();
    options.aggregates = std::move(aggs);
    options.custom_aggregators = std::move(customs);
  } else {
    auto& options =
        static_cast<ThresholdWindowNode&>(*pending_window_).mutable_options();
    options.aggregates = std::move(aggs);
    options.custom_aggregators = std::move(customs);
  }
  plan_.Append(std::move(pending_window_));
  return std::move(*this);
}

Query&& Query::Detect(Pattern pattern, std::vector<Measure> measures) && {
  AppendStep(
      std::make_unique<CepNode>(std::move(pattern), std::move(measures)),
      "Detect");
  return std::move(*this);
}

Query&& Query::JoinLookup(TemporalLookupJoinOptions options) && {
  AppendStep(std::make_unique<LookupJoinNode>(std::move(options)),
             "JoinLookup");
  return std::move(*this);
}

Query&& Query::To(std::shared_ptr<SinkOperator> sink) && {
  if (pending_window_ != nullptr) {
    Fail("To() after a window that was not completed with Aggregate()");
    return std::move(*this);
  }
  plan_.SetSink(std::move(sink));
  return std::move(*this);
}

Query&& Query::FanOut(std::vector<Query> branches) && {
  if (pending_window_ != nullptr) {
    Fail("FanOut() after a window that was not completed with Aggregate()");
    return std::move(*this);
  }
  std::vector<FanOutNode::Branch> chains;
  chains.reserve(branches.size());
  for (Query& branch : branches) {
    if (!branch.error_.ok()) {
      Fail("fan-out branch: " + branch.error_.message());
      continue;
    }
    if (branch.pending_window_ != nullptr) {
      Fail("fan-out branch ends in a window that was not completed with "
           "Aggregate()");
      continue;
    }
    if (branch.plan_.source() != nullptr) {
      Fail("fan-out branches must be built with Query::Branch() "
           "(a branch cannot have its own source)");
      continue;
    }
    chains.push_back(std::move(branch.plan_.mutable_ops()));
  }
  plan_.Append(std::make_unique<FanOutNode>(std::move(chains)));
  return std::move(*this);
}

SplitQuery Query::Split(size_t n) && {
  if (n < 2) Fail("Split() needs at least two branches");
  std::vector<Query> branches;
  for (size_t i = 0; i < n; ++i) branches.push_back(Query::Branch());
  return SplitQuery(std::move(*this), std::move(branches));
}

Result<LogicalPlan> Query::Build() && {
  NM_RETURN_NOT_OK(error_);
  if (pending_window_ != nullptr) {
    return Status::InvalidArgument(
        "query ends in a window that was not completed with Aggregate()");
  }
  return std::move(plan_);
}

Query& SplitQuery::operator[](size_t i) { return branches_.at(i); }

Result<LogicalPlan> SplitQuery::Build() && {
  return std::move(trunk_).FanOut(std::move(branches_)).Build();
}

}  // namespace nebulameos::nebula

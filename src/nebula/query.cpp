#include "nebula/query.hpp"

namespace nebulameos::nebula {

Query Query::From(SourcePtr source) {
  Query q;
  q.source_ = std::move(source);
  return q;
}

Query&& Query::Filter(ExprPtr predicate) && {
  LogicalStep step;
  step.kind = LogicalStep::Kind::kFilter;
  step.predicate = std::move(predicate);
  steps_.push_back(std::move(step));
  return std::move(*this);
}

Query&& Query::Map(std::string name, ExprPtr expr) && {
  LogicalStep step;
  step.kind = LogicalStep::Kind::kMap;
  step.map_specs.push_back({std::move(name), std::move(expr)});
  steps_.push_back(std::move(step));
  return std::move(*this);
}

Query&& Query::MapAll(std::vector<MapSpec> specs) && {
  LogicalStep step;
  step.kind = LogicalStep::Kind::kMap;
  step.map_specs = std::move(specs);
  steps_.push_back(std::move(step));
  return std::move(*this);
}

Query&& Query::Project(std::vector<std::string> fields) && {
  LogicalStep step;
  step.kind = LogicalStep::Kind::kProject;
  step.project_fields = std::move(fields);
  steps_.push_back(std::move(step));
  return std::move(*this);
}

Query&& Query::KeyBy(std::string field) && {
  pending_key_ = std::move(field);
  return std::move(*this);
}

Query&& Query::TumblingWindow(Duration size, std::string time_field) && {
  LogicalStep step;
  step.kind = LogicalStep::Kind::kWindowAgg;
  step.window_options.window = TumblingWindowSpec{size};
  step.window_options.time_field = std::move(time_field);
  step.window_options.key_field = pending_key_;
  pending_window_ = std::move(step);
  return std::move(*this);
}

Query&& Query::SlidingWindow(Duration size, Duration slide,
                             std::string time_field) && {
  LogicalStep step;
  step.kind = LogicalStep::Kind::kWindowAgg;
  step.window_options.window = SlidingWindowSpec{size, slide};
  step.window_options.time_field = std::move(time_field);
  step.window_options.key_field = pending_key_;
  pending_window_ = std::move(step);
  return std::move(*this);
}

Query&& Query::ThresholdWindow(ExprPtr predicate, Duration min_duration,
                               std::string time_field) && {
  LogicalStep step;
  step.kind = LogicalStep::Kind::kThresholdWindow;
  step.threshold_options.predicate = std::move(predicate);
  step.threshold_options.min_duration = min_duration;
  step.threshold_options.time_field = std::move(time_field);
  step.threshold_options.key_field = pending_key_;
  pending_window_ = std::move(step);
  return std::move(*this);
}

Query&& Query::Aggregate(std::vector<AggregateSpec> aggs,
                         std::vector<CustomAggregatorFactory> customs) && {
  if (pending_window_) {
    if (pending_window_->kind == LogicalStep::Kind::kWindowAgg) {
      pending_window_->window_options.aggregates = std::move(aggs);
      pending_window_->window_options.custom_aggregators = std::move(customs);
    } else {
      pending_window_->threshold_options.aggregates = std::move(aggs);
      pending_window_->threshold_options.custom_aggregators =
          std::move(customs);
    }
    steps_.push_back(std::move(*pending_window_));
    pending_window_.reset();
    pending_key_.clear();
  }
  return std::move(*this);
}

Query&& Query::Detect(Pattern pattern, std::vector<Measure> measures) && {
  if (pattern.key_field.empty()) pattern.key_field = pending_key_;
  pending_key_.clear();
  LogicalStep step;
  step.kind = LogicalStep::Kind::kCep;
  step.pattern = std::move(pattern);
  step.measures = std::move(measures);
  steps_.push_back(std::move(step));
  return std::move(*this);
}

Query&& Query::JoinLookup(TemporalLookupJoinOptions options) && {
  LogicalStep step;
  step.kind = LogicalStep::Kind::kLookupJoin;
  step.join_options = std::move(options);
  steps_.push_back(std::move(step));
  return std::move(*this);
}

Query&& Query::To(std::shared_ptr<SinkOperator> sink) && {
  sink_ = std::move(sink);
  return std::move(*this);
}

Result<std::vector<OperatorPtr>> CompilePlan(const Schema& source_schema,
                                             const Query& query) {
  std::vector<OperatorPtr> chain;
  Schema current = source_schema;
  for (const LogicalStep& step : query.steps()) {
    OperatorPtr op;
    switch (step.kind) {
      case LogicalStep::Kind::kFilter: {
        NM_ASSIGN_OR_RETURN(op, FilterOperator::Make(current, step.predicate));
        break;
      }
      case LogicalStep::Kind::kMap: {
        NM_ASSIGN_OR_RETURN(op, MapOperator::Make(current, step.map_specs));
        break;
      }
      case LogicalStep::Kind::kProject: {
        NM_ASSIGN_OR_RETURN(
            op, ProjectOperator::Make(current, step.project_fields));
        break;
      }
      case LogicalStep::Kind::kWindowAgg: {
        NM_ASSIGN_OR_RETURN(
            op, WindowAggOperator::Make(current, step.window_options));
        break;
      }
      case LogicalStep::Kind::kThresholdWindow: {
        NM_ASSIGN_OR_RETURN(op, ThresholdWindowOperator::Make(
                                    current, step.threshold_options));
        break;
      }
      case LogicalStep::Kind::kCep: {
        NM_ASSIGN_OR_RETURN(
            op, CepOperator::Make(current, step.pattern, step.measures));
        break;
      }
      case LogicalStep::Kind::kLookupJoin: {
        NM_ASSIGN_OR_RETURN(
            op, TemporalLookupJoinOperator::Make(current, step.join_options));
        break;
      }
    }
    current = op->output_schema();
    chain.push_back(std::move(op));
  }
  return chain;
}

}  // namespace nebulameos::nebula

/// \file query.hpp
/// \brief The declarative query API: a fluent builder that emits a
/// `LogicalPlan` (logical_plan.hpp).
///
/// Mirrors NebulaStream's query interface:
///
/// ```cpp
/// Result<LogicalPlan> plan =
///     Query::From(std::move(source))
///         .Filter(Lt(Attribute("speed"), Lit(22.2)))
///         .Map("speed_kmh", Mul(Attribute("speed"), Lit(3.6)))
///         .KeyBy("train_id")
///         .TumblingWindow(Minutes(1), "ts")
///         .Aggregate({AggregateSpec::Avg("speed", "avg_speed")})
///         .To(sink)
///         .Build();
/// ```
///
/// The builder is *thin*: every step appends a node to the plan IR, and
/// `Build()` surfaces misuse — `Aggregate` without a pending window, a
/// window never completed with `Aggregate`, `KeyBy` never consumed — as
/// `Result` errors instead of silently misbehaving at submission. The
/// emitted plan can be inspected (`Explain`), optimized (optimizer.hpp)
/// and lowered (`CompilePlan`); `NodeEngine::Submit` accepts either a
/// finished plan or the builder itself.
///
/// Queries can *branch*: `FanOut` terminates the shared prefix with
/// several sub-queries built via `Query::Branch()`, each ending in its own
/// `To(sink)`, and `Split(n)` is the handle-style sugar over it:
///
/// ```cpp
/// SplitQuery split = Query::From(std::move(source))
///                        .Map("speed_kmh", Mul(Attribute("speed"), Lit(3.6)))
///                        .Split(2);
/// std::move(split[0]).Filter(alert_condition).To(alert_sink);
/// std::move(split[1]).KeyBy("zone")
///     .TumblingWindow(Seconds(30), "ts")
///     .Aggregate({AggregateSpec::Avg("noise_db", "avg_noise")})
///     .To(archive_sink);
/// Result<LogicalPlan> plan = std::move(split).Build();
/// ```
///
/// The shared prefix (source + Map above) executes once per buffer at
/// runtime; each branch consumes its full output.

#pragma once

#include "nebula/logical_plan.hpp"

namespace nebulameos::nebula {

class SplitQuery;

/// \brief Fluent builder producing a `LogicalPlan`.
class Query {
 public:
  /// Starts a query from a source (takes ownership).
  static Query From(SourcePtr source);

  /// Starts a sourceless sub-query describing one fan-out branch (consumed
  /// by `FanOut`). Branches support every fluent step and must terminate
  /// in `To` (or a nested `FanOut`).
  static Query Branch();

  /// Adds a filter step.
  Query&& Filter(ExprPtr predicate) &&;

  /// Adds one computed field.
  Query&& Map(std::string name, ExprPtr expr) &&;

  /// Adds several computed fields at once.
  Query&& MapAll(std::vector<MapSpec> specs) &&;

  /// Keeps only the named fields.
  Query&& Project(std::vector<std::string> fields) &&;

  /// Sets the partitioning key for the next window/CEP step. A key that is
  /// not consumed by the immediately following step is a build error.
  Query&& KeyBy(std::string field) &&;

  /// Starts a tumbling-window aggregation (finish with `Aggregate`).
  Query&& TumblingWindow(Duration size, std::string time_field) &&;

  /// Starts a sliding-window aggregation (finish with `Aggregate`).
  Query&& SlidingWindow(Duration size, Duration slide,
                        std::string time_field) &&;

  /// Starts a threshold-window aggregation (finish with `Aggregate`).
  Query&& ThresholdWindow(ExprPtr predicate, Duration min_duration,
                          std::string time_field) &&;

  /// Completes the pending window with aggregates (and optional custom
  /// aggregators). Calling this without a pending window is a build error.
  Query&& Aggregate(std::vector<AggregateSpec> aggs,
                    std::vector<CustomAggregatorFactory> customs = {}) &&;

  /// Adds a CEP step.
  Query&& Detect(Pattern pattern, std::vector<Measure> measures) &&;

  /// Adds a temporal lookup join: enriches each record with the
  /// time-nearest matching record of a bounded side stream.
  Query&& JoinLookup(TemporalLookupJoinOptions options) &&;

  /// Terminates the query with a sink (shared so callers can inspect
  /// results after the run).
  Query&& To(std::shared_ptr<SinkOperator> sink) &&;

  /// Terminates the query with a fan-out into \p branches (each built with
  /// `Query::Branch()` and ending in its own `To`). The steps before this
  /// call become the branches' shared prefix, executed once at runtime.
  Query&& FanOut(std::vector<Query> branches) &&;

  /// Splits the query into \p n branches sharing every step added so far.
  /// Sugar over `Branch`/`FanOut`: continue each `split[i]` fluently,
  /// terminate it in `To`, then `std::move(split).Build()`.
  SplitQuery Split(size_t n) &&;

  /// Emits the logical plan. Fails when the fluent chain was misused
  /// (`Aggregate` without a window, a window left open, ...); structural
  /// plan checks — missing sink, dangling `KeyBy` — live in
  /// `LogicalPlan::Validate` and run at submission.
  Result<LogicalPlan> Build() &&;

 private:
  friend class SplitQuery;

  Query() = default;

  // Records the first misuse; later steps keep appending so the error
  // message refers to the earliest problem.
  void Fail(const std::string& message);
  // Appends a node unless a window is pending (steps between a window and
  // its Aggregate are a misuse).
  void AppendStep(LogicalOperatorPtr node, const char* what);
  // Parks a window node awaiting Aggregate(), with the same guard.
  void SetPendingWindow(LogicalOperatorPtr node, const char* what);

  LogicalPlan plan_;
  // Window awaiting Aggregate(); appended to the plan on completion.
  LogicalOperatorPtr pending_window_;
  Status error_;
};

/// \brief The result of `Query::Split`: the shared trunk plus `n` fluent
/// branch builders. Fluent steps on `split[i]` mutate the stored branch in
/// place (the `&&`-qualified methods return a reference to the same
/// object), so the idiom is `std::move(split[i]).Filter(...).To(sink);`.
class SplitQuery {
 public:
  SplitQuery(SplitQuery&&) = default;
  SplitQuery& operator=(SplitQuery&&) = default;

  /// Branch builder \p i (fails hard on out-of-range).
  Query& operator[](size_t i);

  /// Number of branches.
  size_t size() const { return branches_.size(); }

  /// Assembles trunk + fan-out and emits the logical plan.
  Result<LogicalPlan> Build() &&;

 private:
  friend class Query;

  SplitQuery(Query trunk, std::vector<Query> branches)
      : trunk_(std::move(trunk)), branches_(std::move(branches)) {}

  Query trunk_;
  std::vector<Query> branches_;
};

}  // namespace nebulameos::nebula

/// \file query.hpp
/// \brief The declarative query API: a fluent builder producing a logical
/// plan.
///
/// Mirrors NebulaStream's query interface:
///
/// ```cpp
/// Query q = Query::From(std::move(source))
///               .Filter(Lt(Attribute("speed"), Lit(22.2)))
///               .Map("speed_kmh", Mul(Attribute("speed"), Lit(3.6)))
///               .KeyBy("train_id")
///               .TumblingWindow(Minutes(1), "ts")
///               .Aggregate({AggregateSpec::Avg("speed", "avg_speed")})
///               .To(sink);
/// ```
///
/// The plan is compiled into physical operators by the `NodeEngine`
/// (engine.hpp). Compilation is where schemas propagate and expressions
/// bind, so invalid plans are rejected at submission.

#pragma once

#include "nebula/cep.hpp"
#include "nebula/join.hpp"
#include "nebula/operators.hpp"
#include "nebula/source.hpp"

namespace nebulameos::nebula {

/// \brief One logical step of a query plan.
struct LogicalStep {
  enum class Kind {
    kFilter,
    kMap,
    kProject,
    kWindowAgg,
    kThresholdWindow,
    kCep,
    kLookupJoin,
  };

  Kind kind;
  // Populated according to kind:
  ExprPtr predicate;                       // kFilter
  std::vector<MapSpec> map_specs;          // kMap
  std::vector<std::string> project_fields; // kProject
  WindowAggOptions window_options;         // kWindowAgg
  ThresholdWindowOptions threshold_options;// kThresholdWindow
  Pattern pattern;                         // kCep
  std::vector<Measure> measures;           // kCep
  TemporalLookupJoinOptions join_options;  // kLookupJoin
};

/// \brief A complete logical query: source → steps → sink.
class Query {
 public:
  /// Starts a query from a source (takes ownership).
  static Query From(SourcePtr source);

  /// Adds a filter step.
  Query&& Filter(ExprPtr predicate) &&;

  /// Adds one computed field.
  Query&& Map(std::string name, ExprPtr expr) &&;

  /// Adds several computed fields at once.
  Query&& MapAll(std::vector<MapSpec> specs) &&;

  /// Keeps only the named fields.
  Query&& Project(std::vector<std::string> fields) &&;

  /// Sets the partitioning key for the next window/CEP step.
  Query&& KeyBy(std::string field) &&;

  /// Starts a tumbling-window aggregation (finish with `Aggregate`).
  Query&& TumblingWindow(Duration size, std::string time_field) &&;

  /// Starts a sliding-window aggregation (finish with `Aggregate`).
  Query&& SlidingWindow(Duration size, Duration slide,
                        std::string time_field) &&;

  /// Starts a threshold-window aggregation (finish with `Aggregate`).
  Query&& ThresholdWindow(ExprPtr predicate, Duration min_duration,
                          std::string time_field) &&;

  /// Completes the pending window with aggregates (and optional custom
  /// aggregators).
  Query&& Aggregate(std::vector<AggregateSpec> aggs,
                    std::vector<CustomAggregatorFactory> customs = {}) &&;

  /// Adds a CEP step.
  Query&& Detect(Pattern pattern, std::vector<Measure> measures) &&;

  /// Adds a temporal lookup join: enriches each record with the
  /// time-nearest matching record of a bounded side stream.
  Query&& JoinLookup(TemporalLookupJoinOptions options) &&;

  /// Terminates the query with a sink (shared so callers can inspect
  /// results after the run).
  Query&& To(std::shared_ptr<SinkOperator> sink) &&;

  // --- Accessors used by the engine ---

  Source* source() const { return source_.get(); }
  SourcePtr TakeSource() { return std::move(source_); }
  const std::vector<LogicalStep>& steps() const { return steps_; }
  const std::shared_ptr<SinkOperator>& sink() const { return sink_; }

 private:
  Query() = default;

  SourcePtr source_;
  std::vector<LogicalStep> steps_;
  std::shared_ptr<SinkOperator> sink_;
  std::string pending_key_;
  // Pending window awaiting Aggregate().
  std::optional<LogicalStep> pending_window_;
};

/// \brief Compiles a logical query into a physical operator chain
/// (schemas propagate source → sink; expressions bind along the way).
/// On success the query's source has been consumed.
Result<std::vector<OperatorPtr>> CompilePlan(const Schema& source_schema,
                                             const Query& query);

}  // namespace nebulameos::nebula

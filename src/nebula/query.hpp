/// \file query.hpp
/// \brief The declarative query API: a fluent builder that emits a
/// `LogicalPlan` (logical_plan.hpp).
///
/// Mirrors NebulaStream's query interface:
///
/// ```cpp
/// Result<LogicalPlan> plan =
///     Query::From(std::move(source))
///         .Filter(Lt(Attribute("speed"), Lit(22.2)))
///         .Map("speed_kmh", Mul(Attribute("speed"), Lit(3.6)))
///         .KeyBy("train_id")
///         .TumblingWindow(Minutes(1), "ts")
///         .Aggregate({AggregateSpec::Avg("speed", "avg_speed")})
///         .To(sink)
///         .Build();
/// ```
///
/// The builder is *thin*: every step appends a node to the plan IR, and
/// `Build()` surfaces misuse — `Aggregate` without a pending window, a
/// window never completed with `Aggregate`, `KeyBy` never consumed — as
/// `Result` errors instead of silently misbehaving at submission. The
/// emitted plan can be inspected (`Explain`), optimized (optimizer.hpp)
/// and lowered (`CompilePlan`); `NodeEngine::Submit` accepts either a
/// finished plan or the builder itself.

#pragma once

#include "nebula/logical_plan.hpp"

namespace nebulameos::nebula {

/// \brief Fluent builder producing a `LogicalPlan`.
class Query {
 public:
  /// Starts a query from a source (takes ownership).
  static Query From(SourcePtr source);

  /// Adds a filter step.
  Query&& Filter(ExprPtr predicate) &&;

  /// Adds one computed field.
  Query&& Map(std::string name, ExprPtr expr) &&;

  /// Adds several computed fields at once.
  Query&& MapAll(std::vector<MapSpec> specs) &&;

  /// Keeps only the named fields.
  Query&& Project(std::vector<std::string> fields) &&;

  /// Sets the partitioning key for the next window/CEP step. A key that is
  /// not consumed by the immediately following step is a build error.
  Query&& KeyBy(std::string field) &&;

  /// Starts a tumbling-window aggregation (finish with `Aggregate`).
  Query&& TumblingWindow(Duration size, std::string time_field) &&;

  /// Starts a sliding-window aggregation (finish with `Aggregate`).
  Query&& SlidingWindow(Duration size, Duration slide,
                        std::string time_field) &&;

  /// Starts a threshold-window aggregation (finish with `Aggregate`).
  Query&& ThresholdWindow(ExprPtr predicate, Duration min_duration,
                          std::string time_field) &&;

  /// Completes the pending window with aggregates (and optional custom
  /// aggregators). Calling this without a pending window is a build error.
  Query&& Aggregate(std::vector<AggregateSpec> aggs,
                    std::vector<CustomAggregatorFactory> customs = {}) &&;

  /// Adds a CEP step.
  Query&& Detect(Pattern pattern, std::vector<Measure> measures) &&;

  /// Adds a temporal lookup join: enriches each record with the
  /// time-nearest matching record of a bounded side stream.
  Query&& JoinLookup(TemporalLookupJoinOptions options) &&;

  /// Terminates the query with a sink (shared so callers can inspect
  /// results after the run).
  Query&& To(std::shared_ptr<SinkOperator> sink) &&;

  /// Emits the logical plan. Fails when the fluent chain was misused
  /// (`Aggregate` without a window, a window left open, ...); structural
  /// plan checks — missing sink, dangling `KeyBy` — live in
  /// `LogicalPlan::Validate` and run at submission.
  Result<LogicalPlan> Build() &&;

 private:
  Query() = default;

  // Records the first misuse; later steps keep appending so the error
  // message refers to the earliest problem.
  void Fail(const std::string& message);
  // Appends a node unless a window is pending (steps between a window and
  // its Aggregate are a misuse).
  void AppendStep(LogicalOperatorPtr node, const char* what);
  // Parks a window node awaiting Aggregate(), with the same guard.
  void SetPendingWindow(LogicalOperatorPtr node, const char* what);

  LogicalPlan plan_;
  // Window awaiting Aggregate(); appended to the plan on completion.
  LogicalOperatorPtr pending_window_;
  Status error_;
};

}  // namespace nebulameos::nebula

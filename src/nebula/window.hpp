/// \file window.hpp
/// \brief Window definitions and aggregation specifications.
///
/// The paper extends NebulaStream's "window definition expressions and
/// operands" so spatiotemporal streams can be grouped with **tumbling**,
/// **sliding** and **threshold** windows. This module defines those window
/// specs, the event-time assigner for time windows, the standard aggregate
/// functions, and the `CustomAggregator` extension hook through which the
/// MEOS integration contributes spatiotemporal aggregates (trajectory
/// assembly, spatiotemporal extent).

#pragma once

#include <functional>
#include <memory>
#include <variant>

#include "nebula/expr.hpp"

namespace nebulameos::nebula {

/// \brief Fixed-size, non-overlapping event-time windows.
struct TumblingWindowSpec {
  Duration size = 0;
};

/// \brief Fixed-size windows sliding by `slide` (overlapping when
/// slide < size).
struct SlidingWindowSpec {
  Duration size = 0;
  Duration slide = 0;
};

/// \brief Data-driven windows: a window opens (per key) while `predicate`
/// holds and closes when it stops holding; windows shorter than
/// `min_duration` are discarded. This is NebulaStream's threshold window.
struct ThresholdWindowSpec {
  ExprPtr predicate;
  Duration min_duration = 0;
};

/// Any window specification.
using WindowSpec =
    std::variant<TumblingWindowSpec, SlidingWindowSpec, ThresholdWindowSpec>;

/// \brief Assigns event timestamps to time-window start offsets.
class WindowAssigner {
 public:
  /// Builds an assigner for tumbling or sliding windows. Threshold windows
  /// are stateful and handled by the operator directly.
  static Result<WindowAssigner> Make(const WindowSpec& spec);

  /// Start timestamps of every window containing \p t (one for tumbling).
  void AssignWindows(Timestamp t, std::vector<Timestamp>* starts) const;

  /// Window length.
  Duration size() const { return size_; }
  /// Window slide (== size for tumbling).
  Duration slide() const { return slide_; }

 private:
  WindowAssigner(Duration size, Duration slide) : size_(size), slide_(slide) {}
  Duration size_;
  Duration slide_;
};

// --- Aggregates ---------------------------------------------------------------

/// Standard aggregate functions over a numeric field.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax, kFirst, kLast };

/// \brief One aggregate output: `kind(field) AS output_name`.
struct AggregateSpec {
  AggKind kind;
  std::string field;        ///< input field (ignored for kCount)
  std::string output_name;  ///< output field name

  static AggregateSpec Count(std::string out) {
    return {AggKind::kCount, "", std::move(out)};
  }
  static AggregateSpec Sum(std::string field, std::string out) {
    return {AggKind::kSum, std::move(field), std::move(out)};
  }
  static AggregateSpec Avg(std::string field, std::string out) {
    return {AggKind::kAvg, std::move(field), std::move(out)};
  }
  static AggregateSpec Min(std::string field, std::string out) {
    return {AggKind::kMin, std::move(field), std::move(out)};
  }
  static AggregateSpec Max(std::string field, std::string out) {
    return {AggKind::kMax, std::move(field), std::move(out)};
  }
  static AggregateSpec First(std::string field, std::string out) {
    return {AggKind::kFirst, std::move(field), std::move(out)};
  }
  static AggregateSpec Last(std::string field, std::string out) {
    return {AggKind::kLast, std::move(field), std::move(out)};
  }
};

/// \brief Incremental state for one `AggregateSpec` within one window pane.
class AggState {
 public:
  /// Folds one value observed at \p t into the state.
  void Add(double v, Timestamp t);
  /// Result for \p kind given the folded state.
  double Result(AggKind kind) const;
  /// Number of folded values.
  int64_t count() const { return count_; }

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double first_ = 0.0;
  double last_ = 0.0;
  Timestamp first_t_ = 0;
  Timestamp last_t_ = 0;
};

/// \brief Extension hook: a stateful aggregator contributed by a plugin.
///
/// A custom aggregator consumes every record of a window pane and writes one
/// or more output fields into the window's result row. The MEOS integration
/// uses this to assemble `TGeomPointSeq` trajectories inside windows and
/// derive spatiotemporal measures from them.
class CustomAggregator {
 public:
  virtual ~CustomAggregator() = default;

  /// Folds one record (with its event time) into the state.
  virtual void Add(const RecordView& rec, Timestamp event_time) = 0;

  /// The fields this aggregator appends to the window output schema.
  virtual std::vector<struct Field> OutputFields() const = 0;

  /// Writes this aggregator's outputs; \p first_index is the index of its
  /// first output field in the result schema.
  virtual void WriteResult(RecordWriter* out, size_t first_index) = 0;

  /// Resolves input field names once the input schema is known.
  virtual Status Bind(const Schema& schema) = 0;
};

/// Factory producing a fresh custom-aggregator state per window pane.
using CustomAggregatorFactory =
    std::function<std::unique_ptr<CustomAggregator>()>;

}  // namespace nebulameos::nebula

#include "nebula/engine.hpp"

#include <cstdlib>
#include <deque>
#include <functional>

#include "common/logging.hpp"
#include "nebula/analysis/pipeline_verifier.hpp"
#include "nebula/analysis/plan_verifier.hpp"
#include "nebula/metrics/sampler.hpp"
#include "nebula/worker_pool.hpp"

namespace nebulameos::nebula {

namespace {

// Worker count resolution: an explicit option wins; otherwise the
// NM_WORKER_THREADS environment variable (the CI/TSan toggle that forces
// every test through the concurrent path unchanged); otherwise 1.
size_t ResolveWorkerThreads(size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("NM_WORKER_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

// splitmix64 finalizer: partition router hash for integer keys. The raw
// key must not pick the partition directly — sequential ids would then
// map adjacent keys to adjacent partitions and skew under stride
// patterns.
uint64_t HashKeyInt(int64_t v) {
  uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// FNV-1a: partition router hash for text keys.
uint64_t HashKeyText(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Bounded blocking queue for the pipelined hand-off between the source
/// thread and the processing thread.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  void Push(TupleBufferPtr buf) NM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (items_.size() >= capacity_ && !closed_) not_full_.Wait(mutex_);
    if (closed_) return;
    items_.push_back(std::move(buf));
    not_empty_.NotifyOne();
  }

  /// Pops the next buffer; returns nullptr when closed and drained.
  TupleBufferPtr Pop() NM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) not_empty_.Wait(mutex_);
    if (items_.empty()) return nullptr;
    TupleBufferPtr buf = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return buf;
  }

  void Close() NM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

 private:
  size_t capacity_;
  Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<TupleBufferPtr> items_ NM_GUARDED_BY(mutex_);
  bool closed_ NM_GUARDED_BY(mutex_) = false;
};

/// Depth-first visit of every segment of a compiled pipeline tree.
template <typename Fn>
void ForEachSegment(const CompiledPipeline& seg, const Fn& fn) {
  fn(seg);
  for (const CompiledPipeline& branch : seg.branches) {
    ForEachSegment(branch, fn);
  }
}

}  // namespace

struct NodeEngine::RunningQuery {
  int id = 0;
  SourcePtr source;
  CompiledPipeline pipeline;  // operator tree; sinks at the leaves
  std::unique_ptr<ExecutionContext> ctx;
  std::unique_ptr<BoundedQueue> queue;  // pipelined mode only

  std::thread worker;
  std::thread source_thread;  // pipelined mode only
  std::atomic<bool> cancel{false};
  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  Status run_status;
  // Written by the source thread (pipelined mode) strictly before it closes
  // the queue; read by the pipeline thread only after the queue drains.
  Status source_status;

  // Ingest-side counters (source output).
  std::atomic<uint64_t> events_ingested{0};
  std::atomic<uint64_t> bytes_ingested{0};
  std::atomic<int64_t> started_at{0};
  std::atomic<int64_t> finished_at{0};

  // Plan renderings captured at submission (the plan is consumed).
  QueryPlanText plan_text;

  // --- Observability (docs/ARCHITECTURE.md "Observability") ---
  // The query's instrument registry. Instruments are resolved once at
  // submission (BindMetricsTree) and recorded through raw pointers on the
  // hot path — relaxed atomics, no lock, no map lookup. Declared before
  // `pool` so in-flight worker tasks can still record while the pool
  // destructor drains them.
  std::unique_ptr<metrics::MetricsRegistry> metrics;
  // Periodic rate sampler (metrics_interval > 0); declared after the
  // registry (destroyed first) and stopped at the end of RunLoop.
  std::unique_ptr<metrics::Sampler> sampler;
  bool metrics_on = false;
  // Verify-each: check the batch contract (sealed buffer, ascending
  // in-bounds selection) at every segment entry. Set from
  // `OptimizerOptions::verify_each` at submission.
  bool verify_batches = false;
  // Engine-level flow counters and sampler-derived rate gauges.
  metrics::Counter* m_events_ingested = nullptr;
  metrics::Counter* m_bytes_ingested = nullptr;
  metrics::Counter* m_events_emitted = nullptr;
  metrics::Counter* m_bytes_emitted = nullptr;
  metrics::Gauge* m_ingest_rate = nullptr;
  metrics::Gauge* m_emit_rate = nullptr;
  metrics::Counter* m_samples = nullptr;

  // Per-dispatch-target backpressure instruments, shared per segment
  // *path*: partition clones carry their segment's path, so a keyed
  // suffix split N ways feeds one gauge/histogram pair — metric names do
  // not depend on the worker count.
  struct StrandMetrics {
    metrics::Gauge* queue_depth = nullptr;     ///< live queued-batch count
    metrics::Histogram* task_wait = nullptr;   ///< post → run latency
    std::atomic<int64_t> depth{0};
  };
  std::map<std::string, std::unique_ptr<StrandMetrics>> strand_metrics_by_path;
  std::map<const CompiledPipeline*, StrandMetrics*> strand_metrics;

  // --- Dynamic branches (shared-query serving) ---
  // A shared host's root segment ends without a sink; its tail dispatches
  // to whatever branches are attached *at that moment*. Branches carry
  // their own compiled pipeline (suffix chain + sink), their own strand
  // (admitted mid-run, so they cannot live in the immutable `strands`
  // map), and their own instruments under the `b<id>` path. In-flight
  // tasks capture the `shared_ptr`, so a detached branch's operator state
  // survives until its queued work drained.
  struct DynamicBranch {
    int id = 0;
    std::unique_ptr<CompiledPipeline> pipeline;  ///< stable address
    std::unique_ptr<WorkerPool::Strand> strand;  ///< null until the pool exists
    StrandMetrics sm;                            ///< own instruments
    std::atomic<bool> detached{false};
    /// Why the engine force-detached the branch (OK for a clean detach).
    /// Guarded by the host's dyn_mutex.
    Status failure;
  };
  bool shared_host = false;  ///< submitted via `SubmitShared`
  // Guards the branch vector, `next_branch_id`, and (for admission racing
  // `Start`) pool/strand creation. Never held across engine waits.
  mutable Mutex dyn_mutex;
  std::vector<std::shared_ptr<DynamicBranch>> dyn_branches
      NM_GUARDED_BY(dyn_mutex);
  // Detached branches parked until host teardown: a branch's strand may
  // still be under a worker's post-task bookkeeping when the last task
  // capture releases, so the strand must not die at detach time. Declared
  // before `pool` — destroyed after the workers joined.
  std::vector<std::shared_ptr<DynamicBranch>> retired_dyn
      NM_GUARDED_BY(dyn_mutex);
  int next_branch_id NM_GUARDED_BY(dyn_mutex) = 1;

  // Resolves every instrument of the pipeline tree out of the registry:
  // per-operator latency/batch-size histograms (DAG-path prefix, fused
  // kernels expanding per stage), per-channel wire counters, and one
  // strand gauge/histogram pair per segment path. Shared partition sinks
  // re-bind to the same names — the registry returns the same pointers.
  void BindMetricsTree(CompiledPipeline* seg) {
    const std::string prefix = seg->path.empty() ? "" : seg->path + "/";
    const std::string path_key = seg->path.empty() ? "root" : seg->path;
    for (OperatorPtr& op : seg->operators) {
      op->BindMetrics(metrics.get(), prefix);
    }
    if (seg->sink) seg->sink->BindMetrics(metrics.get(), prefix);
    for (size_t i = 0; i < seg->channels.size(); ++i) {
      const std::shared_ptr<NetworkChannel>& ch = seg->channels[i];
      const std::string base = "channel." + path_key + "." +
                               std::to_string(i) + "." +
                               std::to_string(ch->from_node()) + "->" +
                               std::to_string(ch->to_node());
      ch->BindMetrics(metrics->GetCounter(base + ".wire_bytes"),
                      metrics->GetCounter(base + ".frames"),
                      metrics->GetCounter(base + ".events"),
                      metrics->GetHistogram(base + ".transfer_micros"));
      ch->BindFaultMetrics(metrics->GetCounter(base + ".frames_dropped"),
                           metrics->GetCounter(base + ".retransmits"),
                           metrics->GetCounter(base + ".frames_shed"));
    }
    auto it = strand_metrics_by_path.find(path_key);
    if (it == strand_metrics_by_path.end()) {
      auto sm = std::make_unique<StrandMetrics>();
      sm->queue_depth =
          metrics->GetGauge("worker.strand." + path_key + ".queue_depth");
      sm->task_wait = metrics->GetHistogram("worker.strand." + path_key +
                                            ".task_wait_micros");
      it = strand_metrics_by_path.emplace(path_key, std::move(sm)).first;
    }
    strand_metrics[seg] = it->second.get();
    for (CompiledPipeline& branch : seg->branches) BindMetricsTree(&branch);
    for (CompiledPipeline& part : seg->partitions) BindMetricsTree(&part);
  }

  // Morsel execution (worker_threads > 1): one strand per dispatch target
  // (each fan-out branch, each key partition) keeps that target's
  // stateful operators single-threaded and its buffer order intact while
  // distinct targets run concurrently. Built in Start() before any task
  // is posted, immutable afterwards — lock-free to read. `pool` is
  // declared after `strands` so its destructor (which runs remaining
  // strand tasks) fires first.
  std::map<const CompiledPipeline*, std::unique_ptr<WorkerPool::Strand>>
      strands;
  std::unique_ptr<WorkerPool> pool;
  // Task failure handling: *every* strand/branch error is recorded with
  // the dispatch-target path it occurred on, and `failed` makes later
  // tasks short-circuit. The query's final status is the first *root
  // cause*: the earliest non-Cancelled error (a worker that trips over a
  // neighbour's teardown reports Cancelled — a symptom, not the cause),
  // annotated with its path and the count of secondary errors it masked.
  struct TaskError {
    std::string path;
    Status status;
  };
  std::atomic<bool> failed{false};
  Mutex error_mutex;
  std::vector<TaskError> errors NM_GUARDED_BY(error_mutex);

  void RecordFailure(const Status& st) { RecordFailure("root", st); }

  void RecordFailure(const std::string& path, const Status& st) {
    {
      MutexLock lock(error_mutex);
      errors.push_back({path, st});
    }
    failed.store(true, std::memory_order_relaxed);
  }

  Status FirstRootCause() NM_EXCLUDES(error_mutex) {
    MutexLock lock(error_mutex);
    if (errors.empty()) return Status::OK();
    const TaskError* root = &errors.front();
    for (const TaskError& e : errors) {
      if (e.status.code() != StatusCode::kCancelled) {
        root = &e;
        break;
      }
    }
    std::string msg = "[" + root->path + "] " + root->status.message();
    if (errors.size() > 1) {
      msg += " (+" + std::to_string(errors.size() - 1) +
             " secondary error(s))";
    }
    return Status(root->status.code(), std::move(msg));
  }

  // Creates one strand per dispatch target below `seg` (the root segment
  // itself runs on the posting thread).
  void MakeStrands(CompiledPipeline* seg) {
    for (CompiledPipeline& branch : seg->branches) {
      strands[&branch] = pool->MakeStrand();
      MakeStrands(&branch);
    }
    for (CompiledPipeline& part : seg->partitions) {
      strands[&part] = pool->MakeStrand();
      MakeStrands(&part);
    }
  }

  // Runs `target`'s chain over `batch`: inline without a pool, else as a
  // task on the target's strand. The target's strand instruments see
  // every hand-off: queued depth on post/run, post→run wait per task
  // (zeros inline, where nothing ever queues — so the gauge exists and
  // reads 0 at one worker, matching the multi-worker metric names).
  Status Dispatch(CompiledPipeline* target, const exec::Batch& batch) {
    StrandMetrics* sm = metrics_on ? strand_metrics.at(target) : nullptr;
    if (!pool) {
      if (sm) sm->task_wait->Record(0);
      return PushThrough(target, 0, batch);
    }
    int64_t posted_at = 0;
    if (sm) {
      posted_at = MonotonicNowMicros();
      const int64_t d = sm->depth.fetch_add(1, std::memory_order_relaxed) + 1;
      sm->queue_depth->Set(static_cast<double>(d));
    }
    strands.at(target)->Post([this, target, batch, sm, posted_at] {
      if (sm) {
        sm->task_wait->Record(MonotonicNowMicros() - posted_at);
        const int64_t d =
            sm->depth.fetch_sub(1, std::memory_order_relaxed) - 1;
        sm->queue_depth->Set(static_cast<double>(d));
      }
      // Cancelled queries drop queued morsels: cancel is not
      // end-of-stream, so no further state should be built (the drain
      // that follows only retires the captures).
      if (failed.load(std::memory_order_relaxed) ||
          cancel.load(std::memory_order_relaxed)) {
        return;
      }
      const Status st = PushThrough(target, 0, batch);
      if (!st.ok()) {
        RecordFailure(target->path.empty() ? "root" : target->path, st);
      }
    });
    return Status::OK();
  }

  // Routes each selected row of `batch` to the partition owning its key
  // (hash of the key field modulo the partition count) as a selection
  // vector over the *shared* sealed buffer — the hand-off copies row
  // indices, never rows.
  Status DispatchPartitions(CompiledPipeline* seg, const exec::Batch& batch) {
    const size_t num_parts = seg->partitions.size();
    const bool text_key = seg->partition_key_type == DataType::kText16 ||
                          seg->partition_key_type == DataType::kText32;
    std::vector<exec::SelectionVector> sels(num_parts);
    for (size_t i = 0; i < batch.NumRows(); ++i) {
      const size_t row = batch.RowAt(i);
      const RecordView rec = batch.data->At(row);
      const uint64_t h =
          text_key ? HashKeyText(rec.GetText(seg->partition_key_index))
                   : HashKeyInt(rec.GetInt64(seg->partition_key_index));
      sels[h % num_parts].push_back(static_cast<uint32_t>(row));
    }
    for (size_t p = 0; p < num_parts; ++p) {
      if (sels[p].empty()) continue;
      const exec::Batch part(
          batch.data,
          std::make_shared<exec::SelectionVector>(std::move(sels[p])));
      NM_RETURN_NOT_OK(Dispatch(&seg->partitions[p], part));
    }
    return Status::OK();
  }

  // End of a segment's operator chain: route the batch onward — to the
  // key partitions, once per fan-out branch (every branch receives the
  // *same* sealed batch; buffers are immutable after seal and filters
  // refine selection vectors instead of mutating, so the hand-off is
  // zero-copy), or into the sink at a leaf.
  Status DispatchTail(CompiledPipeline* seg, const exec::Batch& batch) {
    if (!seg->partitions.empty()) return DispatchPartitions(seg, batch);
    if (!seg->branches.empty()) {
      for (CompiledPipeline& branch : seg->branches) {
        NM_RETURN_NOT_OK(Dispatch(&branch, batch));
      }
      return Status::OK();
    }
    if (seg->sink == nullptr) return DispatchDynamic(batch);
    if (!metrics_on) {
      return seg->sink->ProcessBatch(batch, [](const exec::Batch&) {});
    }
    const uint64_t rows = batch.NumRows();
    const int64_t start = MonotonicNowMicros();
    const Status st = seg->sink->ProcessBatch(batch, [](const exec::Batch&) {});
    seg->sink->RecordProcess(MonotonicNowMicros() - start, rows);
    m_events_emitted->Add(rows);
    const size_t buffer_rows = batch.data->size();
    if (buffer_rows > 0) {
      m_bytes_emitted->Add(rows * (batch.data->SizeBytes() / buffer_rows));
    }
    return st;
  }

  // Tail of a shared host: hand the sealed batch to every branch attached
  // right now. The snapshot copies shared_ptrs under the lock and posts
  // outside it, so admission/teardown never contends with branch
  // execution, only with this per-buffer copy. Each branch runs on its
  // own strand — the zero-copy fan-out concurrency model, for branches
  // that appear and disappear at runtime.
  Status DispatchDynamic(const exec::Batch& batch) {
    std::vector<std::shared_ptr<DynamicBranch>> active;
    {
      MutexLock lock(dyn_mutex);
      active = dyn_branches;
    }
    for (const std::shared_ptr<DynamicBranch>& br : active) {
      if (br->detached.load(std::memory_order_relaxed)) continue;
      StrandMetrics* sm = metrics_on ? &br->sm : nullptr;
      if (!pool) {
        if (sm) sm->task_wait->Record(0);
        const Status st = PushThrough(br->pipeline.get(), 0, batch);
        if (!st.ok()) FailBranch(br, st);
        continue;
      }
      int64_t posted_at = 0;
      if (sm) {
        posted_at = MonotonicNowMicros();
        const int64_t d =
            sm->depth.fetch_add(1, std::memory_order_relaxed) + 1;
        sm->queue_depth->Set(static_cast<double>(d));
      }
      br->strand->Post([this, br, batch, sm, posted_at] {
        if (sm) {
          sm->task_wait->Record(MonotonicNowMicros() - posted_at);
          const int64_t d =
              sm->depth.fetch_sub(1, std::memory_order_relaxed) - 1;
          sm->queue_depth->Set(static_cast<double>(d));
        }
        if (failed.load(std::memory_order_relaxed) ||
            cancel.load(std::memory_order_relaxed) ||
            br->detached.load(std::memory_order_relaxed)) {
          return;
        }
        const Status st = PushThrough(br->pipeline.get(), 0, batch);
        if (!st.ok()) FailBranch(br, st);
      });
    }
    return Status::OK();
  }

  // Fault isolation for shared hosts: a branch whose own operators error
  // is force-detached with a descriptive status instead of failing the
  // host — its siblings and the shared ingest keep running, and the
  // branch's owner reads the failure through `BranchStatus`. Does NOT set
  // `failed`: that flag kills the whole host.
  void FailBranch(const std::shared_ptr<DynamicBranch>& br,
                  const Status& st) NM_EXCLUDES(dyn_mutex) {
    br->detached.store(true, std::memory_order_relaxed);
    MutexLock lock(dyn_mutex);
    br->failure = Status(st.code(), "branch " + br->pipeline->path +
                                        " detached: " + st.message());
    NM_LOG_ERROR() << "query " << id << " " << br->failure.ToString();
    for (auto it = dyn_branches.begin(); it != dyn_branches.end(); ++it) {
      if (it->get() != br.get()) continue;
      retired_dyn.push_back(std::move(*it));
      dyn_branches.erase(it);
      break;
    }
  }

  // End-of-stream for a shared host's branches: finish each surviving
  // branch on its own strand (FIFO order — every data task was posted
  // first, so Finish observes the complete shared stream).
  Status FinishDynamicBranches() {
    std::vector<std::shared_ptr<DynamicBranch>> active;
    {
      MutexLock lock(dyn_mutex);
      active = dyn_branches;
    }
    for (const std::shared_ptr<DynamicBranch>& br : active) {
      if (br->detached.load(std::memory_order_relaxed)) continue;
      if (!pool) {
        const Status st = FinishSegment(br->pipeline.get());
        if (!st.ok()) FailBranch(br, st);
        continue;
      }
      br->strand->Post([this, br] {
        if (failed.load(std::memory_order_relaxed) ||
            cancel.load(std::memory_order_relaxed) ||
            br->detached.load(std::memory_order_relaxed)) {
          return;
        }
        const Status st = FinishSegment(br->pipeline.get());
        if (!st.ok()) FailBranch(br, st);
      });
    }
    return Status::OK();
  }

  // Pushes a batch through segment operators [from..] and onward via
  // `DispatchTail`. With metrics on, each operator's process-latency
  // histogram records its *self* time: wall time of ProcessBatch minus
  // the time spent inside the forward continuation (which runs the rest
  // of the chain). Fused batch-kernel operators time their stages
  // internally instead and leave the base histograms unbound, so the
  // outer RecordProcess no-ops for them.
  Status PushThrough(CompiledPipeline* seg, size_t from,
                     const exec::Batch& batch) {
    if (verify_batches && from == 0) {
      NM_RETURN_NOT_OK(analysis::VerifyBatch(batch));
    }
    if (from >= seg->operators.size()) {
      return DispatchTail(seg, batch);
    }
    Operator* op = seg->operators[from].get();
    if (!metrics_on) {
      Status inner = Status::OK();
      auto forward = [this, seg, from, &inner](const exec::Batch& out) {
        Status st = PushThrough(seg, from + 1, out);
        if (!st.ok() && inner.ok()) inner = st;
      };
      Status s = op->ProcessBatch(batch, forward);
      if (!s.ok()) return s;
      return inner;
    }
    const uint64_t rows_in = batch.NumRows();
    int64_t child_micros = 0;
    Status inner = Status::OK();
    auto forward = [this, seg, from, &inner,
                    &child_micros](const exec::Batch& out) {
      const int64_t t0 = MonotonicNowMicros();
      Status st = PushThrough(seg, from + 1, out);
      child_micros += MonotonicNowMicros() - t0;
      if (!st.ok() && inner.ok()) inner = st;
    };
    const int64_t start = MonotonicNowMicros();
    Status s = op->ProcessBatch(batch, forward);
    op->RecordProcess(MonotonicNowMicros() - start - child_micros, rows_in);
    if (!s.ok()) return s;
    return inner;
  }

  // Finishes `target` on its own strand (inline without a pool). Strand
  // FIFO order makes this safe: every data task for the target was posted
  // before the finish task, so Finish observes the complete stream.
  Status FinishTarget(CompiledPipeline* target) {
    if (!pool) return FinishSegment(target);
    strands.at(target)->Post([this, target] {
      if (failed.load(std::memory_order_relaxed) ||
          cancel.load(std::memory_order_relaxed)) {
        return;
      }
      const Status st = FinishSegment(target);
      if (!st.ok()) {
        RecordFailure(target->path.empty() ? "root" : target->path, st);
      }
    });
    return Status::OK();
  }

  // End-of-stream: cascade Finish through the segment's chain (flushed
  // state flows through the rest of the chain and into the downstream
  // targets), then finish each partition and branch pipeline.
  Status FinishSegment(CompiledPipeline* seg) {
    for (size_t i = 0; i < seg->operators.size(); ++i) {
      Status inner = Status::OK();
      auto forward = [this, seg, i, &inner](const TupleBufferPtr& out) {
        out->Seal();
        Status st = PushThrough(seg, i + 1, exec::Batch(out));
        if (!st.ok() && inner.ok()) inner = st;
      };
      Status s = seg->operators[i]->Finish(forward);
      if (!s.ok()) return s;
      if (!inner.ok()) return inner;
    }
    for (CompiledPipeline& part : seg->partitions) {
      NM_RETURN_NOT_OK(FinishTarget(&part));
    }
    for (CompiledPipeline& branch : seg->branches) {
      NM_RETURN_NOT_OK(FinishTarget(&branch));
    }
    if (seg->sink == nullptr && seg->partitions.empty() &&
        seg->branches.empty()) {
      // Shared-host leaf: end-of-stream cascades into whatever dynamic
      // branches are attached.
      return FinishDynamicBranches();
    }
    return Status::OK();
  }

  Status FinishAll() { return FinishSegment(&pipeline); }

  // Opens every operator and sink in the tree. Partition clones share
  // their leaf sink, so it is opened once per clone — Open only stores
  // the context, which is identical each time.
  Status OpenAll(CompiledPipeline* seg) {
    for (OperatorPtr& op : seg->operators) {
      NM_RETURN_NOT_OK(op->Open(ctx.get()));
    }
    if (seg->sink) NM_RETURN_NOT_OK(seg->sink->Open(ctx.get()));
    for (CompiledPipeline& branch : seg->branches) {
      NM_RETURN_NOT_OK(OpenAll(&branch));
    }
    for (CompiledPipeline& part : seg->partitions) {
      NM_RETURN_NOT_OK(OpenAll(&part));
    }
    return Status::OK();
  }
};

NodeEngine::NodeEngine(EngineOptions options)
    : options_(options),
      worker_threads_(ResolveWorkerThreads(options.worker_threads)) {
  // NM_FAULT_PROFILE overrides the configured channel fault profile — the
  // CI fault-injection gate runs the whole suite lossy through this.
  if (std::optional<FaultProfile> env = EnvFaultProfile()) {
    options_.faults.profile = *env;
  }
}

NodeEngine::~NodeEngine() {
  std::vector<int> ids;
  {
    MutexLock lock(mutex_);
    for (const auto& [id, rq] : queries_) ids.push_back(id);
  }
  for (int id : ids) (void)Cancel(id);
}

Result<int> NodeEngine::Submit(LogicalPlan plan) {
  NM_RETURN_NOT_OK(plan.Validate());
  auto rq = std::make_unique<RunningQuery>();
  rq->plan_text.logical = plan.Explain();
  // Placed plans submit verbatim: placement annotations are tied to the
  // exact plan shape they were computed for, and rewrite passes create
  // and move nodes without carrying annotations — rewriting here would
  // silently shift the lowered channel boundaries. (The placement flow
  // rewrites to fixpoint *before* annotating.)
  if (options_.optimizer.enable && !plan.IsPlaced()) {
    const PlanRewriter rewriter = PlanRewriter::Default(options_.optimizer);
    NM_RETURN_NOT_OK(rewriter.Rewrite(&plan));
  }
  rq->plan_text.optimized = plan.Explain();
  if (options_.optimizer.verify_each) {
    analysis::VerifyContext vctx;
    vctx.topology = options_.topology;
    NM_RETURN_NOT_OK(analysis::VerifyPlan(plan, vctx));
  }
  CompileOptions compile_options;
  compile_options.compiled_kernels = options_.compiled_kernels;
  compile_options.partitions = worker_threads_;
  compile_options.faults = options_.faults;
  NM_ASSIGN_OR_RETURN(rq->pipeline,
                      CompilePlan(plan.source()->schema(), plan,
                                  options_.topology, compile_options));
  if (options_.optimizer.verify_each) {
    NM_RETURN_NOT_OK(analysis::VerifyPipeline(rq->pipeline));
    rq->verify_batches = true;
  }
  rq->source = plan.TakeSource();
  rq->ctx = std::make_unique<ExecutionContext>(options_.tuples_per_buffer,
                                               options_.pool_size);
  NM_RETURN_NOT_OK(rq->OpenAll(&rq->pipeline));
  rq->metrics_on = options_.metrics_enabled;
  if (rq->metrics_on) {
    rq->metrics = std::make_unique<metrics::MetricsRegistry>();
    rq->m_events_ingested = rq->metrics->GetCounter("engine.events_ingested");
    rq->m_bytes_ingested = rq->metrics->GetCounter("engine.bytes_ingested");
    rq->m_events_emitted = rq->metrics->GetCounter("engine.events_emitted");
    rq->m_bytes_emitted = rq->metrics->GetCounter("engine.bytes_emitted");
    rq->m_ingest_rate = rq->metrics->GetGauge("engine.ingest_events_per_sec");
    rq->m_emit_rate = rq->metrics->GetGauge("engine.emit_events_per_sec");
    rq->m_samples = rq->metrics->GetCounter("engine.metric_samples");
    rq->BindMetricsTree(&rq->pipeline);
  }
  MutexLock lock(mutex_);
  const int id = next_id_++;
  rq->id = id;
  queries_[id] = std::move(rq);
  return id;
}

Result<int> NodeEngine::Submit(Query query) {
  NM_ASSIGN_OR_RETURN(LogicalPlan plan, std::move(query).Build());
  return Submit(std::move(plan));
}

Result<int> NodeEngine::SubmitShared(LogicalPlan plan, int delivery_node) {
  if (plan.source() == nullptr) {
    return Status::InvalidArgument("shared plan has no source");
  }
  for (const LogicalOperatorPtr& op : plan.ops()) {
    if (op->kind() == LogicalOperator::Kind::kSink ||
        op->kind() == LogicalOperator::Kind::kFanOut) {
      return Status::InvalidArgument(
          "shared prefix must be a sink-less linear chain; consumers "
          "attach via AttachBranch");
    }
  }
  auto rq = std::make_unique<RunningQuery>();
  rq->shared_host = true;
  rq->plan_text.logical = plan.Explain();
  // Submitted verbatim: the serving manager already optimized the prefix,
  // and rewriting here could change the shape branch suffixes were
  // structurally matched against.
  rq->plan_text.optimized = rq->plan_text.logical;
  if (options_.optimizer.verify_each) {
    analysis::VerifyContext vctx;
    vctx.topology = options_.topology;
    vctx.shared_prefix = true;
    NM_RETURN_NOT_OK(analysis::VerifyPlan(plan, vctx));
  }
  CompileOptions compile_options;
  compile_options.compiled_kernels = options_.compiled_kernels;
  compile_options.partitions = 1;  // the stateful tails live in branches
  compile_options.faults = options_.faults;
  NM_ASSIGN_OR_RETURN(rq->pipeline,
                      CompilePlan(plan.source()->schema(), plan,
                                  options_.topology, compile_options));
  // Fleet delivery: ship the shared stream once to the node the branches
  // run on. Every attached branch then consumes node-local data, so the
  // uplink cost stays flat no matter how many client queries share the
  // host.
  if (delivery_node != LogicalOperator::kUnplaced &&
      options_.topology != nullptr) {
    int end_node = plan.source_placement();
    for (const LogicalOperatorPtr& op : plan.ops()) {
      if (op->placement() != LogicalOperator::kUnplaced) {
        end_node = op->placement();
      }
    }
    if (end_node != LogicalOperator::kUnplaced && end_node != delivery_node) {
      NM_ASSIGN_OR_RETURN(std::shared_ptr<NetworkChannel> channel,
                          NetworkChannel::Connect(*options_.topology,
                                                  end_node, delivery_node));
      channel->ConfigureFaults(options_.faults.profile, options_.faults.retry);
      const Schema& schema = rq->pipeline.output_schema;
      NM_ASSIGN_OR_RETURN(OperatorPtr channel_sink,
                          NetworkChannelSink::Make(schema, channel));
      NM_ASSIGN_OR_RETURN(OperatorPtr channel_source,
                          NetworkChannelSource::Make(schema, channel));
      rq->pipeline.operators.push_back(std::move(channel_sink));
      rq->pipeline.operators.push_back(std::move(channel_source));
      rq->pipeline.channels.push_back(std::move(channel));
    }
  }
  if (options_.optimizer.verify_each) {
    analysis::PipelineVerifyContext pctx;
    pctx.expect_dynamic_tail = true;
    NM_RETURN_NOT_OK(analysis::VerifyPipeline(rq->pipeline, pctx));
    rq->verify_batches = true;
  }
  rq->source = plan.TakeSource();
  rq->ctx = std::make_unique<ExecutionContext>(options_.tuples_per_buffer,
                                               options_.pool_size);
  NM_RETURN_NOT_OK(rq->OpenAll(&rq->pipeline));
  rq->metrics_on = options_.metrics_enabled;
  if (rq->metrics_on) {
    rq->metrics = std::make_unique<metrics::MetricsRegistry>();
    rq->m_events_ingested = rq->metrics->GetCounter("engine.events_ingested");
    rq->m_bytes_ingested = rq->metrics->GetCounter("engine.bytes_ingested");
    rq->m_events_emitted = rq->metrics->GetCounter("engine.events_emitted");
    rq->m_bytes_emitted = rq->metrics->GetCounter("engine.bytes_emitted");
    rq->m_ingest_rate = rq->metrics->GetGauge("engine.ingest_events_per_sec");
    rq->m_emit_rate = rq->metrics->GetGauge("engine.emit_events_per_sec");
    rq->m_samples = rq->metrics->GetCounter("engine.metric_samples");
    rq->BindMetricsTree(&rq->pipeline);
  }
  MutexLock lock(mutex_);
  const int id = next_id_++;
  rq->id = id;
  queries_[id] = std::move(rq);
  return id;
}

Result<int> NodeEngine::AttachBranch(
    int host_id, std::vector<LogicalOperatorPtr> suffix_ops) {
  RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(host_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  if (!rq->shared_host) {
    return Status::FailedPrecondition(
        "query is not a shared host (SubmitShared)");
  }
  if (suffix_ops.empty() ||
      suffix_ops.back()->kind() != LogicalOperator::Kind::kSink) {
    return Status::InvalidArgument("branch suffix must end in a sink");
  }
  for (const LogicalOperatorPtr& op : suffix_ops) {
    if (op->kind() == LogicalOperator::Kind::kFanOut) {
      return Status::InvalidArgument(
          "branch suffix must be linear; attach one branch per leaf");
    }
  }
  auto br = std::make_shared<RunningQuery::DynamicBranch>();
  {
    MutexLock lock(rq->dyn_mutex);
    br->id = rq->next_branch_id++;
  }
  // Compiled single-node against the prefix's output schema: the suffix
  // runs where the shared stream was delivered, so branch placement
  // annotations (matched structurally by the serving layer) never open a
  // second channel.
  LogicalPlan suffix_plan;
  for (LogicalOperatorPtr& op : suffix_ops) suffix_plan.Append(std::move(op));
  CompileOptions copts;
  copts.compiled_kernels = options_.compiled_kernels;
  copts.partitions = 1;
  copts.faults = options_.faults;
  br->pipeline = std::make_unique<CompiledPipeline>();
  NM_ASSIGN_OR_RETURN(*br->pipeline,
                      CompilePlan(rq->pipeline.output_schema, suffix_plan,
                                  nullptr, copts));
  if (br->pipeline->sink == nullptr || !br->pipeline->branches.empty()) {
    return Status::InvalidArgument(
        "branch suffix must compile to one linear chain ending in a sink");
  }
  br->pipeline->path = "b" + std::to_string(br->id);
  if (options_.optimizer.verify_each) {
    analysis::PipelineVerifyContext pctx;
    pctx.root_path = br->pipeline->path;
    NM_RETURN_NOT_OK(analysis::VerifyPipeline(*br->pipeline, pctx));
  }
  for (OperatorPtr& op : br->pipeline->operators) {
    NM_RETURN_NOT_OK(op->Open(rq->ctx.get()));
  }
  NM_RETURN_NOT_OK(br->pipeline->sink->Open(rq->ctx.get()));
  if (rq->metrics_on) {
    const std::string path_key = br->pipeline->path;
    const std::string prefix = path_key + "/";
    for (OperatorPtr& op : br->pipeline->operators) {
      op->BindMetrics(rq->metrics.get(), prefix);
    }
    br->pipeline->sink->BindMetrics(rq->metrics.get(), prefix);
    br->sm.queue_depth =
        rq->metrics->GetGauge("worker.strand." + path_key + ".queue_depth");
    br->sm.task_wait = rq->metrics->GetHistogram("worker.strand." + path_key +
                                                 ".task_wait_micros");
  }
  // Publication point: the next DispatchDynamic snapshot sees the branch,
  // so it joins the stream at a buffer boundary.
  MutexLock lock(rq->dyn_mutex);
  if (rq->pool) br->strand = rq->pool->MakeStrand();
  const int branch_id = br->id;
  rq->dyn_branches.push_back(std::move(br));
  if (options_.optimizer.verify_each && rq->pool) {
    std::vector<std::pair<std::string, const void*>> owners;
    owners.reserve(rq->dyn_branches.size());
    for (const auto& b : rq->dyn_branches) {
      owners.emplace_back(b->pipeline->path, b->strand.get());
    }
    NM_RETURN_NOT_OK(analysis::VerifyStrandOwnership(owners));
  }
  return branch_id;
}

Status NodeEngine::DetachBranch(int host_id, int branch_id) {
  RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(host_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  MutexLock lock(rq->dyn_mutex);
  for (auto it = rq->dyn_branches.begin(); it != rq->dyn_branches.end();
       ++it) {
    if ((*it)->id != branch_id) continue;
    // Flag first: tasks already queued on the branch's strand check the
    // flag and fall through without touching operator state. The branch
    // itself parks in `retired_dyn` rather than dying here — its strand
    // may still be in a worker's hands — and is destroyed with the host.
    (*it)->detached.store(true, std::memory_order_relaxed);
    rq->retired_dyn.push_back(std::move(*it));
    rq->dyn_branches.erase(it);
    return Status::OK();
  }
  // Already retired — either detached earlier or force-detached by the
  // engine after a branch failure. Detaching is idempotent either way
  // (the failure stays readable through BranchStatus).
  for (const auto& br : rq->retired_dyn) {
    if (br->id == branch_id) return Status::OK();
  }
  return Status::NotFound("unknown branch id");
}

Status NodeEngine::BranchStatus(int host_id, int branch_id) const {
  const RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(host_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  MutexLock lock(rq->dyn_mutex);
  for (const auto& br : rq->dyn_branches) {
    if (br->id == branch_id) return Status::OK();
  }
  for (const auto& br : rq->retired_dyn) {
    if (br->id == branch_id) return br->failure;
  }
  return Status::NotFound("unknown branch id");
}

Result<QueryStats> NodeEngine::BranchStats(int host_id, int branch_id) const {
  const RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(host_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  std::shared_ptr<RunningQuery::DynamicBranch> br;
  {
    MutexLock lock(rq->dyn_mutex);
    for (const auto& candidate : rq->dyn_branches) {
      if (candidate->id == branch_id) {
        br = candidate;
        break;
      }
    }
  }
  if (!br) return Status::NotFound("unknown branch id");
  QueryStats stats;
  // Shared ingest: every branch of the host rides the same source stream.
  stats.events_ingested = rq->events_ingested.load();
  stats.bytes_ingested = rq->bytes_ingested.load();
  if (rq->finished.load()) {
    stats.elapsed_micros = rq->finished_at.load() - rq->started_at.load();
  } else if (rq->started.load()) {
    stats.elapsed_micros = MonotonicNowMicros() - rq->started_at.load();
  }
  stats.buffers_acquired = rq->ctx->TotalBuffersAcquired();
  stats.tasks_shed = rq->pool ? rq->pool->tasks_shed() : 0;
  const std::string prefix = br->pipeline->path + "/";
  for (const OperatorPtr& op : br->pipeline->operators) {
    op->AppendStats(prefix, &stats.operator_stats);
  }
  const OperatorStats sink_flow = br->pipeline->sink->stats();
  stats.operator_stats.emplace_back(prefix + br->pipeline->sink->name(),
                                    sink_flow);
  SinkStats sink_stats;
  sink_stats.path = br->pipeline->path;
  sink_stats.name = br->pipeline->sink->name();
  sink_stats.events_emitted = sink_flow.events_in;
  sink_stats.bytes_emitted = sink_flow.bytes_in;
  stats.events_emitted = sink_stats.events_emitted;
  stats.bytes_emitted = sink_stats.bytes_emitted;
  stats.sink_stats.push_back(std::move(sink_stats));
  return stats;
}

Result<QueryPlanText> NodeEngine::Explain(int query_id) const {
  MutexLock lock(mutex_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("unknown query id");
  }
  return it->second->plan_text;
}

void NodeEngine::SourceLoop(RunningQuery* rq) {
  // Pipelined mode: fill buffers and hand them to the processing thread.
  while (!rq->cancel.load()) {
    TupleBufferPtr buf = rq->ctx->Allocate(rq->source->schema());
    auto more = rq->source->Fill(buf.get());
    if (!more.ok()) {
      rq->source_status = more.status();
      break;
    }
    rq->events_ingested.fetch_add(buf->size());
    rq->bytes_ingested.fetch_add(buf->SizeBytes());
    if (rq->metrics_on) {
      rq->m_events_ingested->Add(buf->size());
      rq->m_bytes_ingested->Add(buf->SizeBytes());
    }
    if (!buf->empty()) {
      buf->Seal();
      rq->queue->Push(std::move(buf));
    }
    if (!*more) break;
  }
  rq->queue->Close();
}

void NodeEngine::RunLoop(RunningQuery* rq) {
  Status status = Status::OK();
  if (options_.pipelined) {
    while (true) {
      TupleBufferPtr buf = rq->queue->Pop();
      if (!buf) break;
      status = rq->PushThrough(&rq->pipeline, 0, exec::Batch(std::move(buf)));
      if (!status.ok() || rq->cancel.load() ||
          rq->failed.load(std::memory_order_relaxed)) {
        break;
      }
    }
    // The queue only closes after the source thread recorded its status.
    if (status.ok() && !rq->source_status.ok()) {
      status = rq->source_status;
    }
  } else {
    while (!rq->cancel.load() &&
           !rq->failed.load(std::memory_order_relaxed)) {
      TupleBufferPtr buf = rq->ctx->Allocate(rq->source->schema());
      auto more = rq->source->Fill(buf.get());
      if (!more.ok()) {
        status = more.status();
        break;
      }
      rq->events_ingested.fetch_add(buf->size());
      rq->bytes_ingested.fetch_add(buf->SizeBytes());
      if (rq->metrics_on) {
        rq->m_events_ingested->Add(buf->size());
        rq->m_bytes_ingested->Add(buf->SizeBytes());
      }
      if (!buf->empty()) {
        buf->Seal();
        status =
            rq->PushThrough(&rq->pipeline, 0, exec::Batch(std::move(buf)));
        if (!status.ok()) break;
      }
      if (!*more) break;
    }
  }
  // Cancellation is not end-of-stream: a cancelled query must not flush
  // its window/CEP state as if the stream completed, so FinishAll is
  // skipped — partial panes are simply dropped with the query.
  if (status.ok() && !rq->cancel.load()) status = rq->FinishAll();
  // Run every dispatched morsel (including the finish cascades just
  // posted) to completion before reading the task-side error slot; the
  // drain also guarantees task-captured buffer handles have recycled —
  // on cancellation this is what keeps in-flight strand tasks from
  // touching operator state after teardown began.
  if (rq->pool) rq->pool->Drain();
  // Final sample covers the tail window, then the sampler thread joins —
  // after this no thread but the caller touches the rate gauges.
  if (rq->sampler) rq->sampler->Stop();
  // Ingest/finish errors join the same all-errors model the strand tasks
  // record into, so the reported status is uniformly "first root cause,
  // tagged with its task path, plus a secondary-error count".
  if (!status.ok()) rq->RecordFailure(status);
  status = rq->FirstRootCause();
  if (!status.ok()) {
    NM_LOG_ERROR() << "query " << rq->id << " failed: " << status.ToString();
  }
  rq->run_status = status;
  rq->finished_at.store(MonotonicNowMicros());
  rq->finished.store(true);
}

Status NodeEngine::Start(int query_id) {
  RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  if (rq->started.exchange(true)) {
    return Status::FailedPrecondition("query already started");
  }
  rq->started_at.store(MonotonicNowMicros());
  if (worker_threads_ > 1) {
    // Strand capacity = the pipelined hand-off depth: the ingest thread
    // blocks once a target falls that many sealed batches behind
    // (worker-side posts never block — see worker_pool.hpp). Created
    // under dyn_mutex so a concurrent AttachBranch either sees the pool
    // (and makes its own strand) or is seen here (and gets one).
    MutexLock lock(rq->dyn_mutex);
    rq->pool = std::make_unique<WorkerPool>(worker_threads_,
                                            options_.queue_capacity,
                                            options_.faults.retry.shed_policy);
    rq->MakeStrands(&rq->pipeline);
    for (const auto& br : rq->dyn_branches) {
      if (!br->strand) br->strand = rq->pool->MakeStrand();
    }
    if (rq->verify_batches && !rq->dyn_branches.empty()) {
      std::vector<std::pair<std::string, const void*>> owners;
      owners.reserve(rq->dyn_branches.size());
      for (const auto& br : rq->dyn_branches) {
        owners.emplace_back(br->pipeline->path, br->strand.get());
      }
      NM_RETURN_NOT_OK(analysis::VerifyStrandOwnership(owners));
    }
  }
  if (options_.pipelined) {
    rq->queue = std::make_unique<BoundedQueue>(options_.queue_capacity);
    rq->source_thread = std::thread([this, rq] { SourceLoop(rq); });
  }
  if (rq->metrics_on && options_.metrics_interval > 0) {
    // Windowed rates: each tick divides the counter delta since the last
    // tick by the elapsed window, so a long-running query's gauges track
    // the *current* throughput instead of the lifetime average.
    rq->sampler = std::make_unique<metrics::Sampler>(
        options_.metrics_interval,
        [rq, last_in = uint64_t{0},
         last_out = uint64_t{0}](int64_t elapsed_micros) mutable {
          if (elapsed_micros <= 0) return;
          const double secs = static_cast<double>(elapsed_micros) / 1e6;
          const uint64_t in = rq->m_events_ingested->value();
          const uint64_t out = rq->m_events_emitted->value();
          rq->m_ingest_rate->Set(static_cast<double>(in - last_in) / secs);
          rq->m_emit_rate->Set(static_cast<double>(out - last_out) / secs);
          last_in = in;
          last_out = out;
          rq->m_samples->Increment();
        });
  }
  rq->worker = std::thread([this, rq] { RunLoop(rq); });
  return Status::OK();
}

Status NodeEngine::Wait(int query_id) {
  RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  if (!rq->started.load()) {
    return Status::FailedPrecondition("query not started");
  }
  if (rq->source_thread.joinable()) rq->source_thread.join();
  if (rq->worker.joinable()) rq->worker.join();
  return rq->run_status;
}

Status NodeEngine::Cancel(int query_id) {
  RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  rq->cancel.store(true);
  if (rq->queue) rq->queue->Close();
  if (!rq->started.load()) return Status::OK();
  return Wait(query_id);
}

Status NodeEngine::RunToCompletion(int query_id) {
  NM_RETURN_NOT_OK(Start(query_id));
  return Wait(query_id);
}

Result<QueryStats> NodeEngine::Stats(int query_id) const {
  const RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  QueryStats stats;
  stats.events_ingested = rq->events_ingested.load();
  stats.bytes_ingested = rq->bytes_ingested.load();
  if (rq->finished.load()) {
    stats.elapsed_micros = rq->finished_at.load() - rq->started_at.load();
  } else if (rq->started.load()) {
    stats.elapsed_micros = MonotonicNowMicros() - rq->started_at.load();
  }
  stats.buffers_acquired = rq->ctx->TotalBuffersAcquired();
  stats.tasks_shed = rq->pool ? rq->pool->tasks_shed() : 0;
  // Depth-first over the pipeline tree: operators keyed by DAG path, one
  // SinkStats entry per leaf, emitted totals summed across sinks. Fused
  // batch-kernel operators expand to one entry per fused stage, so the
  // sequence matches the logical plan shape either way. Partition clones
  // carry their segment's path and identical operator sequences, so their
  // entries sum element-wise into one per-path sequence — and they share
  // one sink, counted once.
  const auto append_sink = [&stats](const CompiledPipeline& seg,
                                    const std::string& prefix) {
    const OperatorStats sink_flow = seg.sink->stats();
    stats.operator_stats.emplace_back(prefix + seg.sink->name(), sink_flow);
    SinkStats sink_stats;
    sink_stats.path = seg.path;
    sink_stats.name = seg.sink->name();
    sink_stats.events_emitted = sink_flow.events_in;
    sink_stats.bytes_emitted = sink_flow.bytes_in;
    stats.events_emitted += sink_stats.events_emitted;
    stats.bytes_emitted += sink_stats.bytes_emitted;
    stats.sink_stats.push_back(std::move(sink_stats));
  };
  const std::function<void(const CompiledPipeline&)> visit =
      [&](const CompiledPipeline& seg) {
        const std::string prefix = seg.path.empty() ? "" : seg.path + "/";
        for (const OperatorPtr& op : seg.operators) {
          op->AppendStats(prefix, &stats.operator_stats);
        }
        if (!seg.partitions.empty()) {
          std::vector<std::pair<std::string, OperatorStats>> summed;
          for (const CompiledPipeline& part : seg.partitions) {
            std::vector<std::pair<std::string, OperatorStats>> one;
            for (const OperatorPtr& op : part.operators) {
              op->AppendStats(prefix, &one);
            }
            if (summed.empty()) {
              summed = std::move(one);
            } else {
              for (size_t i = 0; i < summed.size() && i < one.size(); ++i) {
                summed[i].second.Add(one[i].second);
              }
            }
          }
          for (auto& entry : summed) {
            stats.operator_stats.push_back(std::move(entry));
          }
          if (seg.partitions.front().sink) {
            append_sink(seg.partitions.front(), prefix);
          }
          return;
        }
        if (seg.sink) append_sink(seg, prefix);
        for (const CompiledPipeline& branch : seg.branches) visit(branch);
      };
  visit(rq->pipeline);
  // Shared hosts carry their attached branches' flow too, so the host
  // view sums emitted counts across every client riding the prefix.
  if (rq->shared_host) {
    std::vector<std::shared_ptr<RunningQuery::DynamicBranch>> branches;
    {
      MutexLock lock(rq->dyn_mutex);
      branches = rq->dyn_branches;
    }
    for (const auto& br : branches) {
      const std::string prefix = br->pipeline->path + "/";
      for (const OperatorPtr& op : br->pipeline->operators) {
        op->AppendStats(prefix, &stats.operator_stats);
      }
      append_sink(*br->pipeline, prefix);
    }
  }
  return stats;
}

Result<metrics::MetricsSnapshot> NodeEngine::Metrics(int query_id) const {
  const RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  if (!rq->metrics) {
    return Status::FailedPrecondition(
        "metrics disabled (EngineOptions::metrics_enabled = false)");
  }
  return rq->metrics->Snapshot();
}

Result<DeploymentReport> NodeEngine::Deployment(int query_id) const {
  const RunningQuery* rq = nullptr;
  {
    MutexLock lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  // Every channel lowered anywhere in the pipeline tree, depth-first.
  std::vector<std::shared_ptr<NetworkChannel>> channels;
  ForEachSegment(rq->pipeline, [&channels](const CompiledPipeline& seg) {
    channels.insert(channels.end(), seg.channels.begin(),
                    seg.channels.end());
  });
  return MeasureDeployment(channels);
}

size_t NodeEngine::NumQueries() const {
  MutexLock lock(mutex_);
  return queries_.size();
}

}  // namespace nebulameos::nebula

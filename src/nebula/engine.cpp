#include "nebula/engine.hpp"

#include <condition_variable>
#include <deque>

#include "common/logging.hpp"

namespace nebulameos::nebula {

namespace {

/// Bounded blocking queue for the pipelined hand-off between the source
/// thread and the processing thread.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  void Push(TupleBufferPtr buf) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return;
    items_.push_back(std::move(buf));
    not_empty_.notify_one();
  }

  /// Pops the next buffer; returns nullptr when closed and drained.
  TupleBufferPtr Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return nullptr;
    TupleBufferPtr buf = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return buf;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<TupleBufferPtr> items_;
  bool closed_ = false;
};

/// Depth-first visit of every segment of a compiled pipeline tree.
template <typename Fn>
void ForEachSegment(const CompiledPipeline& seg, const Fn& fn) {
  fn(seg);
  for (const CompiledPipeline& branch : seg.branches) {
    ForEachSegment(branch, fn);
  }
}

}  // namespace

struct NodeEngine::RunningQuery {
  int id = 0;
  SourcePtr source;
  CompiledPipeline pipeline;  // operator tree; sinks at the leaves
  std::unique_ptr<ExecutionContext> ctx;
  std::unique_ptr<BoundedQueue> queue;  // pipelined mode only

  std::thread worker;
  std::thread source_thread;  // pipelined mode only
  std::atomic<bool> cancel{false};
  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  Status run_status;
  // Written by the source thread (pipelined mode) strictly before it closes
  // the queue; read by the pipeline thread only after the queue drains.
  Status source_status;

  // Ingest-side counters (source output).
  std::atomic<uint64_t> events_ingested{0};
  std::atomic<uint64_t> bytes_ingested{0};
  int64_t started_at = 0;
  int64_t finished_at = 0;

  // Plan renderings captured at submission (the plan is consumed).
  QueryPlanText plan_text;

  // Pushes a batch through segment operators [from..] and onward: into
  // the sink at a leaf, or once into each branch at a fan-out. Every
  // branch receives the *same* sealed batch — buffers are immutable after
  // seal and branch filters refine selection vectors instead of mutating,
  // so the hand-off is zero-copy (no per-branch copies, no pool draw).
  Status PushThrough(CompiledPipeline* seg, size_t from,
                     const exec::Batch& batch) {
    if (from >= seg->operators.size()) {
      if (seg->branches.empty()) {
        return seg->sink->ProcessBatch(batch, [](const exec::Batch&) {});
      }
      for (CompiledPipeline& branch : seg->branches) {
        NM_RETURN_NOT_OK(PushThrough(&branch, 0, batch));
      }
      return Status::OK();
    }
    Status inner = Status::OK();
    auto forward = [this, seg, from, &inner](const exec::Batch& out) {
      Status st = PushThrough(seg, from + 1, out);
      if (!st.ok() && inner.ok()) inner = st;
    };
    Status s = seg->operators[from]->ProcessBatch(batch, forward);
    if (!s.ok()) return s;
    return inner;
  }

  // End-of-stream: cascade Finish through the segment's chain (flushed
  // state flows through the rest of the chain and into the branches), then
  // finish each branch pipeline.
  Status FinishSegment(CompiledPipeline* seg) {
    for (size_t i = 0; i < seg->operators.size(); ++i) {
      Status inner = Status::OK();
      auto forward = [this, seg, i, &inner](const TupleBufferPtr& out) {
        out->Seal();
        Status st = PushThrough(seg, i + 1, exec::Batch(out));
        if (!st.ok() && inner.ok()) inner = st;
      };
      Status s = seg->operators[i]->Finish(forward);
      if (!s.ok()) return s;
      if (!inner.ok()) return inner;
    }
    for (CompiledPipeline& branch : seg->branches) {
      NM_RETURN_NOT_OK(FinishSegment(&branch));
    }
    return Status::OK();
  }

  Status FinishAll() { return FinishSegment(&pipeline); }

  // Opens every operator and sink in the tree.
  Status OpenAll(CompiledPipeline* seg) {
    for (OperatorPtr& op : seg->operators) {
      NM_RETURN_NOT_OK(op->Open(ctx.get()));
    }
    if (seg->sink) NM_RETURN_NOT_OK(seg->sink->Open(ctx.get()));
    for (CompiledPipeline& branch : seg->branches) {
      NM_RETURN_NOT_OK(OpenAll(&branch));
    }
    return Status::OK();
  }
};

NodeEngine::NodeEngine(EngineOptions options) : options_(options) {}

NodeEngine::~NodeEngine() {
  std::vector<int> ids;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, rq] : queries_) ids.push_back(id);
  }
  for (int id : ids) (void)Cancel(id);
}

Result<int> NodeEngine::Submit(LogicalPlan plan) {
  NM_RETURN_NOT_OK(plan.Validate());
  auto rq = std::make_unique<RunningQuery>();
  rq->plan_text.logical = plan.Explain();
  // Placed plans submit verbatim: placement annotations are tied to the
  // exact plan shape they were computed for, and rewrite passes create
  // and move nodes without carrying annotations — rewriting here would
  // silently shift the lowered channel boundaries. (The placement flow
  // rewrites to fixpoint *before* annotating.)
  if (options_.optimizer.enable && !plan.IsPlaced()) {
    const PlanRewriter rewriter = PlanRewriter::Default(options_.optimizer);
    NM_RETURN_NOT_OK(rewriter.Rewrite(&plan));
  }
  rq->plan_text.optimized = plan.Explain();
  CompileOptions compile_options;
  compile_options.compiled_kernels = options_.compiled_kernels;
  NM_ASSIGN_OR_RETURN(rq->pipeline,
                      CompilePlan(plan.source()->schema(), plan,
                                  options_.topology, compile_options));
  rq->source = plan.TakeSource();
  rq->ctx = std::make_unique<ExecutionContext>(options_.tuples_per_buffer,
                                               options_.pool_size);
  NM_RETURN_NOT_OK(rq->OpenAll(&rq->pipeline));
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = next_id_++;
  rq->id = id;
  queries_[id] = std::move(rq);
  return id;
}

Result<int> NodeEngine::Submit(Query query) {
  NM_ASSIGN_OR_RETURN(LogicalPlan plan, std::move(query).Build());
  return Submit(std::move(plan));
}

Result<QueryPlanText> NodeEngine::Explain(int query_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("unknown query id");
  }
  return it->second->plan_text;
}

void NodeEngine::SourceLoop(RunningQuery* rq) {
  // Pipelined mode: fill buffers and hand them to the processing thread.
  while (!rq->cancel.load()) {
    TupleBufferPtr buf = rq->ctx->Allocate(rq->source->schema());
    auto more = rq->source->Fill(buf.get());
    if (!more.ok()) {
      rq->source_status = more.status();
      break;
    }
    rq->events_ingested.fetch_add(buf->size());
    rq->bytes_ingested.fetch_add(buf->SizeBytes());
    if (!buf->empty()) {
      buf->Seal();
      rq->queue->Push(std::move(buf));
    }
    if (!*more) break;
  }
  rq->queue->Close();
}

void NodeEngine::RunLoop(RunningQuery* rq) {
  rq->started_at = MonotonicNowMicros();
  Status status = Status::OK();
  if (options_.pipelined) {
    while (true) {
      TupleBufferPtr buf = rq->queue->Pop();
      if (!buf) break;
      status = rq->PushThrough(&rq->pipeline, 0, exec::Batch(std::move(buf)));
      if (!status.ok() || rq->cancel.load()) break;
    }
    // The queue only closes after the source thread recorded its status.
    if (status.ok() && !rq->source_status.ok()) {
      status = rq->source_status;
    }
  } else {
    while (!rq->cancel.load()) {
      TupleBufferPtr buf = rq->ctx->Allocate(rq->source->schema());
      auto more = rq->source->Fill(buf.get());
      if (!more.ok()) {
        status = more.status();
        break;
      }
      rq->events_ingested.fetch_add(buf->size());
      rq->bytes_ingested.fetch_add(buf->SizeBytes());
      if (!buf->empty()) {
        buf->Seal();
        status =
            rq->PushThrough(&rq->pipeline, 0, exec::Batch(std::move(buf)));
        if (!status.ok()) break;
      }
      if (!*more) break;
    }
  }
  if (status.ok()) status = rq->FinishAll();
  if (!status.ok()) {
    NM_LOG_ERROR() << "query " << rq->id << " failed: " << status.ToString();
  }
  rq->run_status = status;
  rq->finished_at = MonotonicNowMicros();
  rq->finished.store(true);
}

Status NodeEngine::Start(int query_id) {
  RunningQuery* rq = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  if (rq->started.exchange(true)) {
    return Status::FailedPrecondition("query already started");
  }
  if (options_.pipelined) {
    rq->queue = std::make_unique<BoundedQueue>(options_.queue_capacity);
    rq->source_thread = std::thread([this, rq] { SourceLoop(rq); });
  }
  rq->worker = std::thread([this, rq] { RunLoop(rq); });
  return Status::OK();
}

Status NodeEngine::Wait(int query_id) {
  RunningQuery* rq = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  if (!rq->started.load()) {
    return Status::FailedPrecondition("query not started");
  }
  if (rq->source_thread.joinable()) rq->source_thread.join();
  if (rq->worker.joinable()) rq->worker.join();
  return rq->run_status;
}

Status NodeEngine::Cancel(int query_id) {
  RunningQuery* rq = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  rq->cancel.store(true);
  if (rq->queue) rq->queue->Close();
  if (!rq->started.load()) return Status::OK();
  return Wait(query_id);
}

Status NodeEngine::RunToCompletion(int query_id) {
  NM_RETURN_NOT_OK(Start(query_id));
  return Wait(query_id);
}

Result<QueryStats> NodeEngine::Stats(int query_id) const {
  const RunningQuery* rq = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  QueryStats stats;
  stats.events_ingested = rq->events_ingested.load();
  stats.bytes_ingested = rq->bytes_ingested.load();
  if (rq->finished.load()) {
    stats.elapsed_micros = rq->finished_at - rq->started_at;
  } else if (rq->started.load()) {
    stats.elapsed_micros = MonotonicNowMicros() - rq->started_at;
  }
  stats.buffers_acquired = rq->ctx->TotalBuffersAcquired();
  // Depth-first over the pipeline tree: operators keyed by DAG path, one
  // SinkStats entry per leaf, emitted totals summed across sinks. Fused
  // batch-kernel operators expand to one entry per fused stage, so the
  // sequence matches the logical plan shape either way.
  ForEachSegment(rq->pipeline, [&stats](const CompiledPipeline& seg) {
    const std::string prefix = seg.path.empty() ? "" : seg.path + "/";
    for (const OperatorPtr& op : seg.operators) {
      op->AppendStats(prefix, &stats.operator_stats);
    }
    if (seg.sink) {
      stats.operator_stats.emplace_back(prefix + seg.sink->name(),
                                        seg.sink->stats());
      SinkStats sink_stats;
      sink_stats.path = seg.path;
      sink_stats.name = seg.sink->name();
      sink_stats.events_emitted = seg.sink->stats().events_in;
      sink_stats.bytes_emitted = seg.sink->stats().bytes_in;
      stats.events_emitted += sink_stats.events_emitted;
      stats.bytes_emitted += sink_stats.bytes_emitted;
      stats.sink_stats.push_back(std::move(sink_stats));
    }
  });
  return stats;
}

Result<DeploymentReport> NodeEngine::Deployment(int query_id) const {
  const RunningQuery* rq = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return Status::NotFound("unknown query id");
    }
    rq = it->second.get();
  }
  // Every channel lowered anywhere in the pipeline tree, depth-first.
  std::vector<std::shared_ptr<NetworkChannel>> channels;
  ForEachSegment(rq->pipeline, [&channels](const CompiledPipeline& seg) {
    channels.insert(channels.end(), seg.channels.begin(),
                    seg.channels.end());
  });
  return MeasureDeployment(channels);
}

size_t NodeEngine::NumQueries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queries_.size();
}

}  // namespace nebulameos::nebula

/// \file operators.hpp
/// \brief Concrete stream operators: filter, map, project, window
/// aggregation (tumbling/sliding and threshold), and sinks.
///
/// Every operator is built through a fallible `Make` that receives the
/// *input schema*, binds its expressions, and derives the output schema.

#pragma once

#include <atomic>
#include <cstdio>
#include <limits>
#include <mutex>

#include "nebula/operator.hpp"
#include "nebula/topology.hpp"
#include "nebula/window.hpp"

namespace nebulameos::nebula {

// --- Filter -------------------------------------------------------------------

/// \brief Emits only records for which the predicate evaluates true.
///
/// The interpreted fallback for predicates the batch compiler refuses.
/// Still selection-aware: `ProcessBatch` evaluates per record but emits
/// the input buffer with a refined selection vector — no survivor copies.
class FilterOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input, ExprPtr predicate);

  std::string name() const override { return "Filter"; }
  const Schema& output_schema() const override { return schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;

 private:
  FilterOperator(Schema schema, ExprPtr predicate,
                 std::shared_ptr<CseCache> cse_cache)
      : schema_(std::move(schema)),
        predicate_(std::move(predicate)),
        cse_cache_(std::move(cse_cache)) {}
  Schema schema_;
  ExprPtr predicate_;
  /// Shared-subexpression memo of the `PlanCse`-rewritten predicate; null
  /// when nothing repeats. Strand-serialized with the operator, so the
  /// per-record epoch bump needs no synchronization.
  std::shared_ptr<CseCache> cse_cache_;
  /// Selection scratch: only a *partial* result takes ownership of it
  /// (one allocation); fully-selective and empty results allocate nothing.
  exec::SelectionVector scratch_sel_;
};

// --- Map ----------------------------------------------------------------------

/// One computed field: `expr AS name` (replaces `name` when it exists).
struct MapSpec {
  std::string name;
  ExprPtr expr;
};

/// \brief Resolved layout of a map: the output schema plus, per output
/// field, either the input field to copy (`copy_from[i] >= 0`) or the
/// bound spec expression to evaluate (`exprs[expr_of[i]]`). Shared by the
/// interpreted `MapOperator` and the compiled `exec::CompiledMap`, so the
/// two paths cannot disagree about the layout.
struct MapLayout {
  Schema output_schema;
  std::vector<int> copy_from;
  std::vector<int> expr_of;
  std::vector<ExprPtr> exprs;  ///< bound against the input schema
};

/// Binds \p specs against \p input and derives the map layout.
Result<MapLayout> PlanMapLayout(const Schema& input,
                                std::vector<MapSpec> specs);

/// \brief Adds or replaces computed fields (interpreted fallback).
class MapOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  std::vector<MapSpec> specs);

  std::string name() const override { return "Map"; }
  const Schema& output_schema() const override {
    return layout_.output_schema;
  }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;

 private:
  MapOperator() = default;

  void WriteRecord(const RecordView& rec, RecordWriter* w) const;

  Schema input_schema_;
  MapLayout layout_;
  /// Shared-subexpression memo spanning *all* spec expressions (a subtree
  /// repeated across two computed fields evaluates once per record); null
  /// when nothing repeats.
  std::shared_ptr<CseCache> cse_cache_;
};

// --- Project ------------------------------------------------------------------

/// \brief Keeps only the named fields, in the given order (interpreted
/// fallback).
class ProjectOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  std::vector<std::string> fields);

  std::string name() const override { return "Project"; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;

 private:
  ProjectOperator() = default;

  void WriteRecord(const RecordView& rec, RecordWriter* w) const;

  Schema output_schema_;
  std::vector<size_t> indices_;
};

// --- Windowed aggregation -------------------------------------------------------

/// \brief Configuration of a keyed time-window aggregation.
struct WindowAggOptions {
  std::string key_field;   ///< "" = global (unkeyed)
  std::string time_field;  ///< event-time field (kTimestamp or kInt64)
  WindowSpec window;       ///< tumbling or sliding
  std::vector<AggregateSpec> aggregates;
  std::vector<CustomAggregatorFactory> custom_aggregators;
  Duration allowed_lateness = 0;  ///< watermark slack
};

/// \brief Event-time keyed window aggregation with watermark-based firing.
///
/// Output schema: [key] + window_start + window_end + aggregate fields +
/// custom-aggregator fields. Panes fire when the watermark (max event time −
/// allowed lateness) passes their window end; `Finish` flushes the rest in
/// deterministic (window, key) order.
class WindowAggOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  WindowAggOptions options);

  std::string name() const override { return "WindowAgg"; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  /// Selection-aware: reads selected rows through the selection vector
  /// instead of materializing the partial batch first — a hash-partitioned
  /// window input (engine worker strands) draws no extra pool buffers.
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;
  Status Finish(const EmitFn& emit) override;

 private:
  struct Pane {
    std::vector<AggState> states;
    std::vector<std::unique_ptr<CustomAggregator>> customs;
  };
  using KeyValue = std::variant<int64_t, std::string>;
  using PaneKey = std::pair<Timestamp, KeyValue>;  // (window_start, key)

  WindowAggOperator() = default;

  Status DoProcess(const exec::Batch& input, const EmitFn& emit);
  Pane MakePane() const;
  KeyValue KeyOf(const RecordView& rec) const;
  void WritePane(const PaneKey& key, Pane& pane, TupleBuffer* out) const;
  Status FireUpTo(Timestamp watermark, const EmitFn& emit);

  Schema input_schema_;
  Schema output_schema_;
  WindowAggOptions options_;
  WindowAssigner assigner_{WindowAssigner::Make(TumblingWindowSpec{1}).value()};
  bool keyed_ = false;
  size_t key_index_ = 0;
  DataType key_type_ = DataType::kInt64;
  size_t time_index_ = 0;
  std::vector<size_t> agg_field_index_;
  size_t custom_first_field_ = 0;
  std::map<PaneKey, Pane> panes_;
  Timestamp max_event_time_ = std::numeric_limits<Timestamp>::min();
  std::vector<Timestamp> scratch_starts_;
};

// --- Threshold window -------------------------------------------------------------

/// \brief Configuration of a keyed threshold-window aggregation.
struct ThresholdWindowOptions {
  ExprPtr predicate;       ///< window is open (per key) while this holds
  Duration min_duration = 0;
  std::string key_field;   ///< "" = global
  std::string time_field;
  std::vector<AggregateSpec> aggregates;
  std::vector<CustomAggregatorFactory> custom_aggregators;
};

/// \brief Data-driven windows: one window per maximal run of records
/// satisfying the predicate (per key); runs shorter than `min_duration`
/// are dropped.
///
/// Output schema: [key] + window_start + window_end + aggregates + customs.
class ThresholdWindowOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  ThresholdWindowOptions options);

  std::string name() const override { return "ThresholdWindow"; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  /// Selection-aware (see `WindowAggOperator::ProcessBatch`).
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;
  Status Finish(const EmitFn& emit) override;

 private:
  struct OpenWindow {
    Timestamp start = 0;
    Timestamp last = 0;
    std::vector<AggState> states;
    std::vector<std::unique_ptr<CustomAggregator>> customs;
  };
  using KeyValue = std::variant<int64_t, std::string>;

  ThresholdWindowOperator() = default;

  Status DoProcess(const exec::Batch& input, const EmitFn& emit);
  OpenWindow MakeWindow(Timestamp start) const;
  void CloseInto(const KeyValue& key, OpenWindow& win, TupleBuffer* out) const;

  Schema input_schema_;
  Schema output_schema_;
  ThresholdWindowOptions options_;
  bool keyed_ = false;
  size_t key_index_ = 0;
  DataType key_type_ = DataType::kInt64;
  size_t time_index_ = 0;
  std::vector<size_t> agg_field_index_;
  size_t custom_first_field_ = 0;
  std::map<KeyValue, OpenWindow> open_;
};

// --- Network channel pair ---------------------------------------------------

/// \brief Upstream half of a lowered node transition: serializes each
/// input buffer into a wire frame (24-byte header carrying record count,
/// sequence number and watermark, then the raw record bytes) and sends it
/// over the `NetworkChannel`.
///
/// `CompilePlan` always places the paired `NetworkChannelSource`
/// immediately downstream; the buffer this operator emits is only the
/// scheduling hand-off that drives the pair within the fused pipeline —
/// the *data* the rest of the chain sees travels through the serialized
/// frame. Stats: `bytes_in` counts record payload, `bytes_out` counts
/// serialized wire bytes.
class NetworkChannelSink : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  std::shared_ptr<NetworkChannel> channel);

  std::string name() const override { return "NetworkChannelSink"; }
  const Schema& output_schema() const override { return schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;

  const std::shared_ptr<NetworkChannel>& channel() const { return channel_; }

 private:
  NetworkChannelSink(Schema schema, std::shared_ptr<NetworkChannel> channel)
      : schema_(std::move(schema)), channel_(std::move(channel)) {}
  Schema schema_;
  std::shared_ptr<NetworkChannel> channel_;
};

/// \brief Downstream half of a node transition: drains its channel,
/// deserializes each wire frame into freshly allocated buffers (restoring
/// sequence numbers and watermarks) and emits them. The input buffer it
/// receives from the paired `NetworkChannelSink` is ignored — it only
/// schedules the drain. Stats: `bytes_in` counts wire bytes, `bytes_out`
/// the reconstructed record payload.
class NetworkChannelSource : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& schema,
                                  std::shared_ptr<NetworkChannel> channel);

  std::string name() const override { return "NetworkChannelSource"; }
  const Schema& output_schema() const override { return schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status Finish(const EmitFn& emit) override;

 private:
  NetworkChannelSource(Schema schema, std::shared_ptr<NetworkChannel> channel)
      : schema_(std::move(schema)), channel_(std::move(channel)) {}

  Status Drain(const EmitFn& emit);

  Schema schema_;
  std::shared_ptr<NetworkChannel> channel_;
};

// --- Sinks -------------------------------------------------------------------

/// \brief Terminal operator; consumes buffers. Concrete sinks override
/// `Consume`, which receives a batch so sinks read through the selection
/// vector directly — the leaf of the zero-copy path never materializes.
class SinkOperator : public Operator {
 public:
  const Schema& output_schema() const override { return schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;

 protected:
  explicit SinkOperator(Schema schema) : schema_(std::move(schema)) {}
  /// Consumes the selected rows (`batch.data->At(batch.RowAt(i))`).
  virtual Status Consume(const exec::Batch& batch) = 0;
  Schema schema_;
};

/// \brief Collects result rows as `Value` vectors (thread-safe reads).
class CollectSink : public SinkOperator {
 public:
  explicit CollectSink(Schema schema, size_t max_rows = 1 << 22)
      : SinkOperator(std::move(schema)), max_rows_(max_rows) {}

  std::string name() const override { return "CollectSink"; }

  /// Snapshot of collected rows.
  std::vector<std::vector<Value>> Rows() const;
  /// Number of rows collected so far.
  size_t RowCount() const;

 protected:
  Status Consume(const exec::Batch& batch) override;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<Value>> rows_;
  size_t max_rows_;
};

/// \brief Counts events and bytes only (benchmark sink).
class CountingSink : public SinkOperator {
 public:
  explicit CountingSink(Schema schema) : SinkOperator(std::move(schema)) {}
  std::string name() const override { return "CountingSink"; }

  uint64_t events() const { return events_.load(); }
  uint64_t bytes() const { return bytes_.load(); }

 protected:
  Status Consume(const exec::Batch& batch) override;

 private:
  std::atomic<uint64_t> events_{0};
  std::atomic<uint64_t> bytes_{0};
};

/// \brief Writes rows as CSV (header + one line per record).
class CsvSink : public SinkOperator {
 public:
  static Result<std::shared_ptr<CsvSink>> Open(Schema schema,
                                               const std::string& path);
  ~CsvSink() override;
  std::string name() const override { return "CsvSink"; }

 protected:
  Status Consume(const exec::Batch& batch) override;

 private:
  CsvSink(Schema schema, FILE* file)
      : SinkOperator(std::move(schema)), file_(file) {}
  FILE* file_;
  std::mutex mutex_;
};

}  // namespace nebulameos::nebula

/// \file operators.hpp
/// \brief Concrete stream operators: filter, map, project, window
/// aggregation (tumbling/sliding and threshold), and sinks.
///
/// Every operator is built through a fallible `Make` that receives the
/// *input schema*, binds its expressions, and derives the output schema.

#pragma once

#include <atomic>
#include <cstdio>
#include <limits>
#include <mutex>

#include "nebula/operator.hpp"
#include "nebula/topology.hpp"
#include "nebula/window.hpp"

namespace nebulameos::nebula {

// --- Filter -------------------------------------------------------------------

/// \brief Emits only records for which the predicate evaluates true.
///
/// The interpreted fallback for predicates the batch compiler refuses.
/// Still selection-aware: `ProcessBatch` evaluates per record but emits
/// the input buffer with a refined selection vector — no survivor copies.
class FilterOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input, ExprPtr predicate);

  std::string name() const override { return "Filter"; }
  const Schema& output_schema() const override { return schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;

 private:
  FilterOperator(Schema schema, ExprPtr predicate,
                 std::shared_ptr<CseCache> cse_cache)
      : schema_(std::move(schema)),
        predicate_(std::move(predicate)),
        cse_cache_(std::move(cse_cache)) {}
  Schema schema_;
  ExprPtr predicate_;
  /// Shared-subexpression memo of the `PlanCse`-rewritten predicate; null
  /// when nothing repeats. Strand-serialized with the operator, so the
  /// per-record epoch bump needs no synchronization.
  std::shared_ptr<CseCache> cse_cache_;
  /// Selection scratch: only a *partial* result takes ownership of it
  /// (one allocation); fully-selective and empty results allocate nothing.
  exec::SelectionVector scratch_sel_;
};

// --- Map ----------------------------------------------------------------------

/// One computed field: `expr AS name` (replaces `name` when it exists).
struct MapSpec {
  std::string name;
  ExprPtr expr;
};

/// \brief Resolved layout of a map: the output schema plus, per output
/// field, either the input field to copy (`copy_from[i] >= 0`) or the
/// bound spec expression to evaluate (`exprs[expr_of[i]]`). Shared by the
/// interpreted `MapOperator` and the compiled `exec::CompiledMap`, so the
/// two paths cannot disagree about the layout.
struct MapLayout {
  Schema output_schema;
  std::vector<int> copy_from;
  std::vector<int> expr_of;
  std::vector<ExprPtr> exprs;  ///< bound against the input schema
};

/// Binds \p specs against \p input and derives the map layout.
Result<MapLayout> PlanMapLayout(const Schema& input,
                                std::vector<MapSpec> specs);

/// \brief Adds or replaces computed fields (interpreted fallback).
class MapOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  std::vector<MapSpec> specs);

  std::string name() const override { return "Map"; }
  const Schema& output_schema() const override {
    return layout_.output_schema;
  }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;

 private:
  MapOperator() = default;

  void WriteRecord(const RecordView& rec, RecordWriter* w) const;

  Schema input_schema_;
  MapLayout layout_;
  /// Shared-subexpression memo spanning *all* spec expressions (a subtree
  /// repeated across two computed fields evaluates once per record); null
  /// when nothing repeats.
  std::shared_ptr<CseCache> cse_cache_;
};

// --- Project ------------------------------------------------------------------

/// \brief Keeps only the named fields, in the given order (interpreted
/// fallback).
class ProjectOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  std::vector<std::string> fields);

  std::string name() const override { return "Project"; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;

 private:
  ProjectOperator() = default;

  void WriteRecord(const RecordView& rec, RecordWriter* w) const;

  Schema output_schema_;
  std::vector<size_t> indices_;
};

// --- Windowed aggregation -------------------------------------------------------

/// \brief Configuration of a keyed time-window aggregation.
struct WindowAggOptions {
  std::string key_field;   ///< "" = global (unkeyed)
  std::string time_field;  ///< event-time field (kTimestamp or kInt64)
  WindowSpec window;       ///< tumbling or sliding
  std::vector<AggregateSpec> aggregates;
  std::vector<CustomAggregatorFactory> custom_aggregators;
  Duration allowed_lateness = 0;  ///< watermark slack
};

/// \brief Event-time keyed window aggregation with watermark-based firing.
///
/// Output schema: [key] + window_start + window_end + aggregate fields +
/// custom-aggregator fields. Panes fire when the watermark (max event time −
/// allowed lateness) passes their window end; `Finish` flushes the rest in
/// deterministic (window, key) order.
///
/// Monotonicity guard: a record whose every assigned pane already fired
/// (its window end ≤ the highest watermark this operator fired up to)
/// cannot be applied without re-emitting a closed window, so it is shed
/// and counted (`events_shed` / `op.<path>.WindowAgg.late_shed`) instead
/// of faulting or double-firing. Records late within `allowed_lateness`
/// still join their live panes as before.
class WindowAggOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  WindowAggOptions options);

  std::string name() const override { return "WindowAgg"; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  /// Selection-aware: reads selected rows through the selection vector
  /// instead of materializing the partial batch first — a hash-partitioned
  /// window input (engine worker strands) draws no extra pool buffers.
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;
  Status Finish(const EmitFn& emit) override;
  void BindMetrics(metrics::MetricsRegistry* registry,
                   const std::string& prefix) override {
    Operator::BindMetrics(registry, prefix);
    BindLateShed(registry, prefix);
  }

 private:
  struct Pane {
    std::vector<AggState> states;
    std::vector<std::unique_ptr<CustomAggregator>> customs;
  };
  using KeyValue = std::variant<int64_t, std::string>;
  using PaneKey = std::pair<Timestamp, KeyValue>;  // (window_start, key)

  WindowAggOperator() = default;

  Status DoProcess(const exec::Batch& input, const EmitFn& emit);
  Pane MakePane() const;
  KeyValue KeyOf(const RecordView& rec) const;
  void WritePane(const PaneKey& key, Pane& pane, TupleBuffer* out) const;
  Status FireUpTo(Timestamp watermark, const EmitFn& emit);

  Schema input_schema_;
  Schema output_schema_;
  WindowAggOptions options_;
  WindowAssigner assigner_{WindowAssigner::Make(TumblingWindowSpec{1}).value()};
  bool keyed_ = false;
  size_t key_index_ = 0;
  DataType key_type_ = DataType::kInt64;
  size_t time_index_ = 0;
  std::vector<size_t> agg_field_index_;
  size_t custom_first_field_ = 0;
  std::map<PaneKey, Pane> panes_;
  Timestamp max_event_time_ = std::numeric_limits<Timestamp>::min();
  /// Highest watermark `FireUpTo` ran with; panes ending at or before it
  /// are closed for good (guard against late-record pane resurrection).
  Timestamp fired_through_ = std::numeric_limits<Timestamp>::min();
  std::vector<Timestamp> scratch_starts_;
};

// --- Threshold window -------------------------------------------------------------

/// \brief Configuration of a keyed threshold-window aggregation.
struct ThresholdWindowOptions {
  ExprPtr predicate;       ///< window is open (per key) while this holds
  Duration min_duration = 0;
  std::string key_field;   ///< "" = global
  std::string time_field;
  std::vector<AggregateSpec> aggregates;
  std::vector<CustomAggregatorFactory> custom_aggregators;
};

/// \brief Data-driven windows: one window per maximal run of records
/// satisfying the predicate (per key); runs shorter than `min_duration`
/// are dropped.
///
/// Output schema: [key] + window_start + window_end + aggregates + customs.
class ThresholdWindowOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  ThresholdWindowOptions options);

  std::string name() const override { return "ThresholdWindow"; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  /// Selection-aware (see `WindowAggOperator::ProcessBatch`).
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;
  Status Finish(const EmitFn& emit) override;
  void BindMetrics(metrics::MetricsRegistry* registry,
                   const std::string& prefix) override {
    Operator::BindMetrics(registry, prefix);
    BindLateShed(registry, prefix);
  }

 private:
  struct OpenWindow {
    Timestamp start = 0;
    Timestamp last = 0;
    std::vector<AggState> states;
    std::vector<std::unique_ptr<CustomAggregator>> customs;
  };
  using KeyValue = std::variant<int64_t, std::string>;

  ThresholdWindowOperator() = default;

  Status DoProcess(const exec::Batch& input, const EmitFn& emit);
  OpenWindow MakeWindow(Timestamp start) const;
  void CloseInto(const KeyValue& key, OpenWindow& win, TupleBuffer* out) const;

  Schema input_schema_;
  Schema output_schema_;
  ThresholdWindowOptions options_;
  bool keyed_ = false;
  size_t key_index_ = 0;
  DataType key_type_ = DataType::kInt64;
  size_t time_index_ = 0;
  std::vector<size_t> agg_field_index_;
  size_t custom_first_field_ = 0;
  std::map<KeyValue, OpenWindow> open_;
  /// Per key, the `last` timestamp of the most recently closed window. A
  /// satisfying record at or before it would resurrect a window already
  /// emitted, so the monotonicity guard sheds it instead (counted).
  std::map<KeyValue, Timestamp> closed_through_;
};

// --- Network channel pair ---------------------------------------------------

/// Wire frame header size: `[record_count u64][buffer_seq u64]
/// [watermark i64][channel_seq u64]`, followed by the raw record bytes.
/// `buffer_seq`/`watermark` restore the buffer metadata downstream;
/// `channel_seq` is the contiguous per-channel delivery sequence the
/// retransmit/reorder-repair protocol runs on.
inline constexpr size_t kWireFrameHeaderBytes = 4 * sizeof(uint64_t);

/// \brief Upstream half of a lowered node transition: serializes each
/// input buffer into a wire frame (32-byte header, see
/// `kWireFrameHeaderBytes`, then the raw record bytes) and sends it over
/// the `NetworkChannel` under a contiguous channel sequence number. The
/// channel retains a bounded copy of each unacknowledged frame so the
/// paired source can request retransmits; `Finish` flushes any frames the
/// fault injector is still holding (reorder slot, delay queue).
///
/// `CompilePlan` always places the paired `NetworkChannelSource`
/// immediately downstream; the buffer this operator emits is only the
/// scheduling hand-off that drives the pair within the fused pipeline —
/// the *data* the rest of the chain sees travels through the serialized
/// frame. Stats: `bytes_in` counts record payload, `bytes_out` counts
/// serialized wire bytes.
class NetworkChannelSink : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  std::shared_ptr<NetworkChannel> channel);

  std::string name() const override { return "NetworkChannelSink"; }
  const Schema& output_schema() const override { return schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status Finish(const EmitFn& emit) override;

  const std::shared_ptr<NetworkChannel>& channel() const { return channel_; }

 private:
  NetworkChannelSink(Schema schema, std::shared_ptr<NetworkChannel> channel)
      : schema_(std::move(schema)), channel_(std::move(channel)) {}
  Schema schema_;
  std::shared_ptr<NetworkChannel> channel_;
  uint64_t next_seq_ = 0;  ///< next channel sequence number to assign
};

/// \brief Downstream half of a node transition: drains its channel,
/// deserializes each wire frame into freshly allocated buffers (restoring
/// buffer sequence numbers and watermarks) and emits them. The input
/// buffer it receives from the paired `NetworkChannelSink` is ignored —
/// it only schedules the drain.
///
/// Delivery hardening: frames land in a bounded reorder-repair buffer
/// keyed by channel sequence and are released strictly in sequence order;
/// duplicates are suppressed, acknowledged frames are released from the
/// sender's retransmit queue, and a gap (dropped frame) is repaired by
/// requesting a retransmit — immediately when the repair buffer
/// overflows its capacity, and at `Finish` for any missing tail. An
/// unrecoverable gap (channel dead, frame shed from the retransmit queue,
/// or retransmit attempts exhausted) follows the channel's shed policy:
/// `kBlock` fails the query with a `Status` naming the channel, the drop
/// policies skip the gap and count the frames as lost. Watermarks are
/// clamped per channel so repair-buffer release never regresses them.
/// Stats: `bytes_in` counts wire bytes, `bytes_out` the reconstructed
/// record payload.
class NetworkChannelSource : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& schema,
                                  std::shared_ptr<NetworkChannel> channel);

  std::string name() const override { return "NetworkChannelSource"; }
  const Schema& output_schema() const override { return schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status Finish(const EmitFn& emit) override;

 private:
  /// One parsed frame waiting in the reorder-repair buffer.
  struct PendingFrame {
    uint64_t count = 0;       ///< record count (parsed header)
    uint64_t buffer_seq = 0;  ///< original buffer sequence number
    int64_t watermark = 0;
    std::vector<uint8_t> frame;  ///< full wire frame (payload after header)
  };

  NetworkChannelSource(Schema schema, std::shared_ptr<NetworkChannel> channel)
      : schema_(std::move(schema)), channel_(std::move(channel)) {}

  /// Receives everything currently deliverable, repairs gaps (always under
  /// buffer pressure; also the missing tail when \p at_end), and emits
  /// released frames in sequence order.
  Status Drain(const EmitFn& emit, bool at_end);
  /// Parses one wire frame into the repair buffer (suppressing
  /// duplicates).
  Status StashFrame(std::vector<uint8_t> frame);
  /// Releases the in-sequence prefix of the repair buffer and
  /// acknowledges it.
  Status ReleaseReady(const EmitFn& emit);
  /// Deserializes one released frame into pooled buffers and emits them.
  Status EmitFrame(const PendingFrame& pending, const EmitFn& emit);

  Schema schema_;
  std::shared_ptr<NetworkChannel> channel_;
  /// Reorder-repair buffer keyed by channel sequence; bounded by
  /// `retry_options().reorder_capacity` (overflow triggers gap repair).
  std::map<uint64_t, PendingFrame> pending_;
  uint64_t next_seq_ = 0;  ///< next channel sequence to release
  /// Per-channel watermark clamp: emitted watermarks are monotonic even
  /// when the repair path reconstructs frames whose stored watermarks ran
  /// backwards.
  int64_t last_watermark_ = std::numeric_limits<int64_t>::min();
};

// --- Sinks -------------------------------------------------------------------

/// \brief Terminal operator; consumes buffers. Concrete sinks override
/// `Consume`, which receives a batch so sinks read through the selection
/// vector directly — the leaf of the zero-copy path never materializes.
class SinkOperator : public Operator {
 public:
  const Schema& output_schema() const override { return schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;

 protected:
  explicit SinkOperator(Schema schema) : schema_(std::move(schema)) {}
  /// Consumes the selected rows (`batch.data->At(batch.RowAt(i))`).
  virtual Status Consume(const exec::Batch& batch) = 0;
  Schema schema_;
};

/// \brief Collects result rows as `Value` vectors (thread-safe reads).
class CollectSink : public SinkOperator {
 public:
  explicit CollectSink(Schema schema, size_t max_rows = 1 << 22)
      : SinkOperator(std::move(schema)), max_rows_(max_rows) {}

  std::string name() const override { return "CollectSink"; }

  /// Snapshot of collected rows.
  std::vector<std::vector<Value>> Rows() const;
  /// Number of rows collected so far.
  size_t RowCount() const;

 protected:
  Status Consume(const exec::Batch& batch) override;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<Value>> rows_;
  size_t max_rows_;
};

/// \brief Counts events and bytes only (benchmark sink).
class CountingSink : public SinkOperator {
 public:
  explicit CountingSink(Schema schema) : SinkOperator(std::move(schema)) {}
  std::string name() const override { return "CountingSink"; }

  uint64_t events() const { return events_.load(); }
  uint64_t bytes() const { return bytes_.load(); }

 protected:
  Status Consume(const exec::Batch& batch) override;

 private:
  std::atomic<uint64_t> events_{0};
  std::atomic<uint64_t> bytes_{0};
};

/// \brief Writes rows as CSV (header + one line per record).
class CsvSink : public SinkOperator {
 public:
  static Result<std::shared_ptr<CsvSink>> Open(Schema schema,
                                               const std::string& path);
  ~CsvSink() override;
  std::string name() const override { return "CsvSink"; }

 protected:
  Status Consume(const exec::Batch& batch) override;

 private:
  CsvSink(Schema schema, FILE* file)
      : SinkOperator(std::move(schema)), file_(file) {}
  FILE* file_;
  std::mutex mutex_;
};

}  // namespace nebulameos::nebula

/// \file join.hpp
/// \brief Temporal lookup join: enrich a stream with the time-nearest
/// record of a second (bounded) stream.
///
/// The paper's Q4 "integrates weather data from OpenMeteo" into the train
/// stream. This operator implements that integration as a first-class
/// join rather than a function call: the right side — a bounded stream of
/// timestamped observations (weather per zone per hour) — is drained into
/// an index at `Open`; each left record is then joined with the right
/// record of equal key whose timestamp is nearest within `max_age`
/// (a temporal-table join in Flink terms). Inner-join semantics: left
/// records with no match are dropped and counted.

#pragma once

#include <unordered_map>

#include "nebula/operator.hpp"
#include "nebula/source.hpp"

namespace nebulameos::nebula {

/// \brief Configuration of the temporal lookup join.
struct TemporalLookupJoinOptions {
  /// Bounded right side; drained once when the operator opens. Shared so a
  /// plan can be compiled for schema inference without consuming it.
  std::shared_ptr<Source> lookup;
  std::string left_key;    ///< INT64 key field on the left
  std::string right_key;   ///< INT64 key field on the right
  std::string left_time;   ///< event-time field on the left
  std::string right_time;  ///< event-time field on the right
  /// Maximum |left.ts − right.ts| for a match.
  Duration max_age = 0;
  /// Prefix applied to right-side field names that collide with left ones.
  std::string collision_prefix = "r_";
};

/// \brief The operator. Output schema: left fields, then the right fields
/// except its key and time columns (already represented on the left).
class TemporalLookupJoinOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input,
                                  TemporalLookupJoinOptions options);

  std::string name() const override { return "TemporalLookupJoin"; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Open(ExecutionContext* ctx) override;
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;

  /// Left records dropped because no right record matched.
  uint64_t unmatched() const { return unmatched_; }
  /// Right records indexed at open.
  size_t lookup_size() const { return lookup_rows_; }

 private:
  TemporalLookupJoinOperator() = default;

  struct RightRow {
    Timestamp ts;
    std::vector<uint8_t> bytes;  // full right record
  };

  const RightRow* FindNearest(int64_t key, Timestamp ts) const;

  Schema input_schema_;
  Schema right_schema_;
  Schema output_schema_;
  TemporalLookupJoinOptions options_;
  size_t left_key_index_ = 0;
  size_t left_time_index_ = 0;
  size_t right_key_index_ = 0;
  size_t right_time_index_ = 0;
  std::vector<size_t> right_payload_indices_;  // right fields copied out
  std::unordered_map<int64_t, std::vector<RightRow>> index_;
  uint64_t unmatched_ = 0;
  size_t lookup_rows_ = 0;
  bool opened_ = false;
};

}  // namespace nebulameos::nebula

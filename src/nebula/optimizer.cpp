#include "nebula/optimizer.hpp"

#include <algorithm>
#include <set>

namespace nebulameos::nebula {

namespace {

// The read set of an expression, or nullopt when it cannot be proven
// (treat as "reads everything": never move the node across a producer).
std::optional<std::set<std::string>> ReadSetOf(const ExprPtr& expr) {
  if (!expr) return std::nullopt;
  std::vector<std::string> fields;
  if (!expr->ReferencedFields(&fields)) return std::nullopt;
  return std::set<std::string>(fields.begin(), fields.end());
}

std::set<std::string> WrittenNamesOf(const MapNode& map) {
  std::set<std::string> names;
  for (const MapSpec& spec : map.specs()) names.insert(spec.name);
  return names;
}

bool Disjoint(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::none_of(a.begin(), a.end(),
                      [&b](const std::string& x) { return b.count(x) != 0; });
}

bool IsSubset(const std::set<std::string>& sub,
              const std::vector<std::string>& super) {
  return std::all_of(sub.begin(), sub.end(), [&super](const std::string& x) {
    return std::find(super.begin(), super.end(), x) != super.end();
  });
}

// --- Predicate pushdown ------------------------------------------------------

class PredicatePushdownPass : public RewritePass {
 public:
  std::string name() const override { return "predicate-pushdown"; }

  Status Apply(LogicalPlan* plan, bool* changed) override {
    auto& ops = plan->mutable_ops();
    bool swapped = true;
    while (swapped) {  // bubble filters as far down as they can go
      swapped = false;
      for (size_t i = 1; i < ops.size(); ++i) {
        if (ops[i]->kind() != LogicalOperator::Kind::kFilter) continue;
        const auto& filter = static_cast<const FilterNode&>(*ops[i]);
        const auto reads = ReadSetOf(filter.predicate());
        if (!reads) continue;  // unknown read set: leave in place
        const LogicalOperator& prev = *ops[i - 1];
        bool can_swap = false;
        if (prev.kind() == LogicalOperator::Kind::kMap) {
          // Safe iff the map writes nothing the filter reads.
          can_swap = Disjoint(*reads,
                              WrittenNamesOf(static_cast<const MapNode&>(prev)));
        } else if (prev.kind() == LogicalOperator::Kind::kProject) {
          // Projected fields exist before the projection with identical
          // values, so a filter over them commutes with it.
          can_swap = IsSubset(
              *reads, static_cast<const ProjectNode&>(prev).fields());
        }
        if (can_swap) {
          std::swap(ops[i - 1], ops[i]);
          swapped = true;
          *changed = true;
        }
      }
    }
    return Status::OK();
  }
};

// --- Filter fusion -----------------------------------------------------------

class FilterFusionPass : public RewritePass {
 public:
  std::string name() const override { return "filter-fusion"; }

  Status Apply(LogicalPlan* plan, bool* changed) override {
    auto& ops = plan->mutable_ops();
    for (size_t i = 1; i < ops.size();) {
      if (ops[i - 1]->kind() == LogicalOperator::Kind::kFilter &&
          ops[i]->kind() == LogicalOperator::Kind::kFilter) {
        auto& first = static_cast<FilterNode&>(*ops[i - 1]);
        auto& second = static_cast<FilterNode&>(*ops[i]);
        // Upstream predicate on the left: And short-circuits in the same
        // order the separate operators evaluated.
        first.set_predicate(And(first.predicate(), second.predicate()));
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        *changed = true;
      } else {
        ++i;
      }
    }
    return Status::OK();
  }
};

// --- Map fusion --------------------------------------------------------------

class MapFusionPass : public RewritePass {
 public:
  std::string name() const override { return "map-fusion"; }

  Status Apply(LogicalPlan* plan, bool* changed) override {
    auto& ops = plan->mutable_ops();
    for (size_t i = 1; i < ops.size();) {
      if (ops[i - 1]->kind() == LogicalOperator::Kind::kMap &&
          ops[i]->kind() == LogicalOperator::Kind::kMap &&
          CanFuse(static_cast<const MapNode&>(*ops[i - 1]),
                  static_cast<const MapNode&>(*ops[i]))) {
        auto& first = static_cast<MapNode&>(*ops[i - 1]);
        auto& second = static_cast<MapNode&>(*ops[i]);
        for (MapSpec& spec : second.mutable_specs()) {
          first.mutable_specs().push_back(std::move(spec));
        }
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        *changed = true;
      } else {
        ++i;
      }
    }
    return Status::OK();
  }

 private:
  // Specs within one Map all evaluate against the node's input record, so
  // fusing is sound only when the second map neither reads nor rewrites
  // anything the first one writes.
  static bool CanFuse(const MapNode& first, const MapNode& second) {
    const std::set<std::string> written = WrittenNamesOf(first);
    for (const MapSpec& spec : second.specs()) {
      if (written.count(spec.name) != 0) return false;
      const auto reads = ReadSetOf(spec.expr);
      if (!reads || !Disjoint(*reads, written)) return false;
    }
    return true;
  }
};

// --- Projection pushdown -----------------------------------------------------

class ProjectionPushdownPass : public RewritePass {
 public:
  std::string name() const override { return "projection-pushdown"; }

  Status Apply(LogicalPlan* plan, bool* changed) override {
    auto& ops = plan->mutable_ops();
    for (size_t i = 1; i < ops.size();) {
      if (ops[i]->kind() != LogicalOperator::Kind::kProject) {
        ++i;
        continue;
      }
      const auto& project = static_cast<const ProjectNode&>(*ops[i]);
      if (ops[i - 1]->kind() == LogicalOperator::Kind::kProject) {
        // Adjacent projections collapse to the outer one (its fields are a
        // subset of the inner's in any valid plan; verified to be safe).
        const auto& inner = static_cast<const ProjectNode&>(*ops[i - 1]);
        const std::set<std::string> outer_set(project.fields().begin(),
                                              project.fields().end());
        if (IsSubset(outer_set, inner.fields())) {
          ops[i - 1] = std::make_unique<ProjectNode>(project.fields());
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
          *changed = true;
          continue;
        }
      } else if (ops[i - 1]->kind() == LogicalOperator::Kind::kMap) {
        // Push the projection's field set into the map: computed fields the
        // projection drops are dead and never evaluated.
        auto& map = static_cast<MapNode&>(*ops[i - 1]);
        auto& specs = map.mutable_specs();
        const size_t before = specs.size();
        specs.erase(
            std::remove_if(specs.begin(), specs.end(),
                           [&project](const MapSpec& spec) {
                             const auto& kept = project.fields();
                             return std::find(kept.begin(), kept.end(),
                                              spec.name) == kept.end();
                           }),
            specs.end());
        if (specs.size() != before) *changed = true;
        if (specs.empty()) {
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i - 1));
          *changed = true;
          // The projection slid to index i-1; step back so it is
          // re-examined against its new left neighbour.
          if (i > 1) --i;
          continue;
        }
      }
      ++i;
    }
    return Status::OK();
  }
};

}  // namespace

RewritePassPtr MakePredicatePushdownPass() {
  return std::make_unique<PredicatePushdownPass>();
}

RewritePassPtr MakeFilterFusionPass() {
  return std::make_unique<FilterFusionPass>();
}

RewritePassPtr MakeMapFusionPass() {
  return std::make_unique<MapFusionPass>();
}

RewritePassPtr MakeProjectionPushdownPass() {
  return std::make_unique<ProjectionPushdownPass>();
}

PlanRewriter PlanRewriter::Default(const OptimizerOptions& options) {
  PlanRewriter rewriter;
  rewriter.max_iterations_ = options.max_iterations;
  if (!options.enable) return rewriter;
  if (options.predicate_pushdown) {
    rewriter.AddPass(MakePredicatePushdownPass());
  }
  if (options.filter_fusion) rewriter.AddPass(MakeFilterFusionPass());
  if (options.map_fusion) rewriter.AddPass(MakeMapFusionPass());
  if (options.projection_pushdown) {
    rewriter.AddPass(MakeProjectionPushdownPass());
  }
  return rewriter;
}

PlanRewriter& PlanRewriter::AddPass(RewritePassPtr pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

Status PlanRewriter::Rewrite(LogicalPlan* plan) const {
  for (size_t iter = 0; iter < max_iterations_; ++iter) {
    bool any_changed = false;
    for (const RewritePassPtr& pass : passes_) {
      bool changed = false;
      NM_RETURN_NOT_OK(pass->Apply(plan, &changed));
      any_changed = any_changed || changed;
    }
    if (!any_changed) break;
  }
  return Status::OK();
}

}  // namespace nebulameos::nebula

#include "nebula/optimizer.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "nebula/analysis/plan_verifier.hpp"

namespace nebulameos::nebula {

namespace {

using Chain = std::vector<LogicalOperatorPtr>;

// The read set of an expression, or nullopt when it cannot be proven
// (treat as "reads everything": never move the node across a producer).
std::optional<std::set<std::string>> ReadSetOf(const ExprPtr& expr) {
  if (!expr) return std::nullopt;
  std::vector<std::string> fields;
  if (!expr->ReferencedFields(&fields)) return std::nullopt;
  return std::set<std::string>(fields.begin(), fields.end());
}

std::set<std::string> WrittenNamesOf(const MapNode& map) {
  std::set<std::string> names;
  for (const MapSpec& spec : map.specs()) names.insert(spec.name);
  return names;
}

bool Disjoint(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::none_of(a.begin(), a.end(),
                      [&b](const std::string& x) { return b.count(x) != 0; });
}

bool IsSubset(const std::set<std::string>& sub,
              const std::vector<std::string>& super) {
  return std::all_of(sub.begin(), sub.end(), [&super](const std::string& x) {
    return std::find(super.begin(), super.end(), x) != super.end();
  });
}

/// \brief Base of all built-in passes: applies a chain-local rewrite to
/// the plan's root chain and recursively to every fan-out branch, so each
/// pass is DAG-aware by construction. Cross-boundary rules (hoisting into
/// the shared prefix) see the fan-out node as the last element of the
/// chain they are given.
class ChainRewritePass : public RewritePass {
 public:
  Status Apply(LogicalPlan* plan, bool* changed) override {
    return ApplyRecursive(&plan->mutable_ops(), changed);
  }

 protected:
  virtual Status ApplyChain(Chain* ops, bool* changed) = 0;

 private:
  Status ApplyRecursive(Chain* ops, bool* changed) {
    NM_RETURN_NOT_OK(ApplyChain(ops, changed));
    for (LogicalOperatorPtr& op : *ops) {
      if (op->kind() != LogicalOperator::Kind::kFanOut) continue;
      auto& fan = static_cast<FanOutNode&>(*op);
      for (Chain& branch : fan.mutable_branches()) {
        NM_RETURN_NOT_OK(ApplyRecursive(&branch, changed));
      }
    }
    return Status::OK();
  }
};

// --- Constant folding --------------------------------------------------------

class ConstantFoldingPass : public ChainRewritePass {
 public:
  std::string name() const override { return "constant-folding"; }

 protected:
  Status ApplyChain(Chain* ops, bool* changed) override {
    for (size_t i = 0; i < ops->size();) {
      LogicalOperator& op = *(*ops)[i];
      switch (op.kind()) {
        case LogicalOperator::Kind::kFilter: {
          auto& filter = static_cast<FilterNode&>(op);
          bool folded = false;
          ExprPtr pred = FoldConstants(filter.predicate(), &folded);
          if (folded) {
            *changed = true;
            const auto constant = pred->ConstantValue();
            if (constant && ValueAsBool(*constant)) {
              // Always-true filter: a full no-op stage, delete it. (An
              // always-false filter stays — it still legitimately drops
              // every row.)
              ops->erase(ops->begin() + static_cast<std::ptrdiff_t>(i));
              continue;
            }
            filter.set_predicate(std::move(pred));
          }
          break;
        }
        case LogicalOperator::Kind::kMap: {
          auto& map = static_cast<MapNode&>(op);
          for (MapSpec& spec : map.mutable_specs()) {
            bool folded = false;
            ExprPtr expr = FoldConstants(spec.expr, &folded);
            if (folded) {
              *changed = true;
              spec.expr = std::move(expr);
            }
          }
          break;
        }
        case LogicalOperator::Kind::kThresholdWindow: {
          auto& win = static_cast<ThresholdWindowNode&>(op);
          bool folded = false;
          ExprPtr pred = FoldConstants(win.options().predicate, &folded);
          if (folded) {
            *changed = true;
            win.mutable_options().predicate = std::move(pred);
          }
          break;
        }
        case LogicalOperator::Kind::kCep: {
          auto& cep = static_cast<CepNode&>(op);
          for (PatternStep& step : cep.mutable_pattern().steps) {
            bool folded = false;
            ExprPtr pred = FoldConstants(step.predicate, &folded);
            if (folded) {
              *changed = true;
              step.predicate = std::move(pred);
            }
          }
          break;
        }
        default:
          break;
      }
      ++i;
    }
    return Status::OK();
  }
};

// --- Predicate pushdown ------------------------------------------------------

class PredicatePushdownPass : public ChainRewritePass {
 public:
  std::string name() const override { return "predicate-pushdown"; }

 protected:
  Status ApplyChain(Chain* opsp, bool* changed) override {
    Chain& ops = *opsp;
    // A filter demanded by *every* branch of a trailing fan-out hoists
    // into the shared prefix, where it drops rows once instead of once
    // per branch.
    HoistSharedBranchFilter(opsp, changed);
    bool swapped = true;
    while (swapped) {  // bubble filters as far down as they can go
      swapped = false;
      for (size_t i = 1; i < ops.size(); ++i) {
        if (ops[i]->kind() != LogicalOperator::Kind::kFilter) continue;
        const auto& filter = static_cast<const FilterNode&>(*ops[i]);
        const auto reads = ReadSetOf(filter.predicate());
        if (!reads) continue;  // unknown read set: leave in place
        const LogicalOperator& prev = *ops[i - 1];
        bool can_swap = false;
        if (prev.kind() == LogicalOperator::Kind::kMap) {
          // Safe iff the map writes nothing the filter reads.
          can_swap = Disjoint(*reads,
                              WrittenNamesOf(static_cast<const MapNode&>(prev)));
        } else if (prev.kind() == LogicalOperator::Kind::kProject) {
          // Projected fields exist before the projection with identical
          // values, so a filter over them commutes with it.
          can_swap = IsSubset(
              *reads, static_cast<const ProjectNode&>(prev).fields());
        } else if (prev.kind() == LogicalOperator::Kind::kLookupJoin) {
          // A filter reading no field the lookup side can provide only
          // touches probe-side fields, which the (inner) join forwards
          // unchanged — filtering the probe stream first keeps exactly
          // the rows whose join results would have survived, and skips
          // index lookups for rows the filter drops. Field provenance is
          // conservative (collision-prefixed names count as
          // right-provided even when no collision occurs).
          const auto provided =
              static_cast<const LookupJoinNode&>(prev).RightProvidedFields();
          can_swap = provided && Disjoint(*reads, *provided);
        }
        if (can_swap) {
          std::swap(ops[i - 1], ops[i]);
          swapped = true;
          *changed = true;
        }
      }
    }
    return Status::OK();
  }

 private:
  // Hoisting is sound when every branch *leads* with the same filter:
  // running it before the fan-out sees exactly the records every branch
  // copy would have seen. Identity is proven structurally
  // (`StructurallyEqual` — node kinds, operators, field names, literal
  // values; extension nodes it cannot introspect never compare equal),
  // and every predicate's read set must additionally be provable.
  static void HoistSharedBranchFilter(Chain* opsp, bool* changed) {
    Chain& ops = *opsp;
    if (ops.empty() || ops.back()->kind() != LogicalOperator::Kind::kFanOut) {
      return;
    }
    auto& fan = static_cast<FanOutNode&>(*ops.back());
    auto& branches = fan.mutable_branches();
    if (branches.size() < 2) return;
    bool hoisted = true;
    while (hoisted) {  // several common filters hoist one at a time
      hoisted = false;
      const ExprPtr* first_predicate = nullptr;
      bool all_lead_with_same_filter = true;
      for (const Chain& branch : branches) {
        if (branch.empty() ||
            branch.front()->kind() != LogicalOperator::Kind::kFilter) {
          all_lead_with_same_filter = false;
          break;
        }
        const auto& filter = static_cast<const FilterNode&>(*branch.front());
        if (!ReadSetOf(filter.predicate())) {
          all_lead_with_same_filter = false;
          break;
        }
        if (first_predicate == nullptr) {
          first_predicate = &filter.predicate();
        } else if (!StructurallyEqual(*first_predicate, filter.predicate())) {
          all_lead_with_same_filter = false;
          break;
        }
      }
      if (!all_lead_with_same_filter) break;
      LogicalOperatorPtr shared = std::move(branches[0].front());
      for (Chain& branch : branches) branch.erase(branch.begin());
      ops.insert(ops.end() - 1, std::move(shared));
      hoisted = true;
      *changed = true;
    }
  }
};

// --- Filter fusion -----------------------------------------------------------

class FilterFusionPass : public ChainRewritePass {
 public:
  std::string name() const override { return "filter-fusion"; }

 protected:
  Status ApplyChain(Chain* opsp, bool* changed) override {
    Chain& ops = *opsp;
    for (size_t i = 1; i < ops.size();) {
      if (ops[i - 1]->kind() == LogicalOperator::Kind::kFilter &&
          ops[i]->kind() == LogicalOperator::Kind::kFilter) {
        auto& first = static_cast<FilterNode&>(*ops[i - 1]);
        auto& second = static_cast<FilterNode&>(*ops[i]);
        // Upstream predicate on the left: And short-circuits in the same
        // order the separate operators evaluated.
        first.set_predicate(And(first.predicate(), second.predicate()));
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        *changed = true;
      } else {
        ++i;
      }
    }
    return Status::OK();
  }
};

// --- Map fusion --------------------------------------------------------------

class MapFusionPass : public ChainRewritePass {
 public:
  std::string name() const override { return "map-fusion"; }

 protected:
  Status ApplyChain(Chain* opsp, bool* changed) override {
    Chain& ops = *opsp;
    for (size_t i = 1; i < ops.size();) {
      if (ops[i - 1]->kind() == LogicalOperator::Kind::kMap &&
          ops[i]->kind() == LogicalOperator::Kind::kMap &&
          CanFuse(static_cast<const MapNode&>(*ops[i - 1]),
                  static_cast<const MapNode&>(*ops[i]))) {
        auto& first = static_cast<MapNode&>(*ops[i - 1]);
        auto& second = static_cast<MapNode&>(*ops[i]);
        for (MapSpec& spec : second.mutable_specs()) {
          first.mutable_specs().push_back(std::move(spec));
        }
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        *changed = true;
      } else {
        ++i;
      }
    }
    return Status::OK();
  }

 private:
  // Specs within one Map all evaluate against the node's input record, so
  // fusing is sound only when the second map neither reads nor rewrites
  // anything the first one writes.
  static bool CanFuse(const MapNode& first, const MapNode& second) {
    const std::set<std::string> written = WrittenNamesOf(first);
    for (const MapSpec& spec : second.specs()) {
      if (written.count(spec.name) != 0) return false;
      const auto reads = ReadSetOf(spec.expr);
      if (!reads || !Disjoint(*reads, written)) return false;
    }
    return true;
  }
};

// --- Projection pushdown -----------------------------------------------------

class ProjectionPushdownPass : public ChainRewritePass {
 public:
  std::string name() const override { return "projection-pushdown"; }

 protected:
  Status ApplyChain(Chain* opsp, bool* changed) override {
    Chain& ops = *opsp;
    NarrowFanOutToUnionDemand(opsp, changed);
    for (size_t i = 1; i < ops.size();) {
      if (ops[i]->kind() != LogicalOperator::Kind::kProject) {
        ++i;
        continue;
      }
      const auto& project = static_cast<const ProjectNode&>(*ops[i]);
      if (ops[i - 1]->kind() == LogicalOperator::Kind::kProject) {
        // Adjacent projections collapse to the outer one (its fields are a
        // subset of the inner's in any valid plan; verified to be safe).
        const auto& inner = static_cast<const ProjectNode&>(*ops[i - 1]);
        const std::set<std::string> outer_set(project.fields().begin(),
                                              project.fields().end());
        if (IsSubset(outer_set, inner.fields())) {
          ops[i - 1] = std::make_unique<ProjectNode>(project.fields());
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
          *changed = true;
          continue;
        }
      } else if (ops[i - 1]->kind() == LogicalOperator::Kind::kMap) {
        // Push the projection's field set into the map: computed fields the
        // projection drops are dead and never evaluated.
        auto& map = static_cast<MapNode&>(*ops[i - 1]);
        auto& specs = map.mutable_specs();
        const size_t before = specs.size();
        specs.erase(
            std::remove_if(specs.begin(), specs.end(),
                           [&project](const MapSpec& spec) {
                             const auto& kept = project.fields();
                             return std::find(kept.begin(), kept.end(),
                                              spec.name) == kept.end();
                           }),
            specs.end());
        if (specs.size() != before) *changed = true;
        if (specs.empty()) {
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i - 1));
          *changed = true;
          // The projection slid to index i-1; step back so it is
          // re-examined against its new left neighbour.
          if (i > 1) --i;
          continue;
        }
      }
      ++i;
    }
    return Status::OK();
  }

 private:
  // When every branch of a trailing fan-out *leads* with a projection, the
  // shared prefix only needs the union of their field demands: insert that
  // union projection before the fan-out (each branch keeps its exact
  // projection, so per-branch schemas are unchanged) — the per-branch
  // buffer hand-off then carries narrower records.
  static void NarrowFanOutToUnionDemand(Chain* opsp, bool* changed) {
    Chain& ops = *opsp;
    if (ops.empty() || ops.back()->kind() != LogicalOperator::Kind::kFanOut) {
      return;
    }
    const auto& fan = static_cast<const FanOutNode&>(*ops.back());
    if (fan.branches().size() < 2) return;
    std::vector<std::string> unioned;
    for (const Chain& branch : fan.branches()) {
      if (branch.empty() ||
          branch.front()->kind() != LogicalOperator::Kind::kProject) {
        return;
      }
      for (const std::string& field :
           static_cast<const ProjectNode&>(*branch.front()).fields()) {
        if (std::find(unioned.begin(), unioned.end(), field) ==
            unioned.end()) {
          unioned.push_back(field);
        }
      }
    }
    // Already narrowed (field sets equal, any order): nothing to do — this
    // is also the termination guard for the rewriter's fixpoint loop.
    if (ops.size() >= 2 &&
        ops[ops.size() - 2]->kind() == LogicalOperator::Kind::kProject) {
      const auto& prev = static_cast<const ProjectNode&>(*ops[ops.size() - 2]);
      const std::set<std::string> prev_set(prev.fields().begin(),
                                           prev.fields().end());
      if (prev_set.size() == unioned.size() && IsSubset(prev_set, unioned)) {
        return;
      }
    }
    ops.insert(ops.end() - 1, std::make_unique<ProjectNode>(unioned));
    *changed = true;
  }
};

// --- Placement ---------------------------------------------------------------

// Flattens every placement annotation of `chain` (and nested branches)
// in a deterministic order. `Apply` compares snapshots taken before and
// after placing to report `changed` truthfully — the recursive solver
// may annotate a branch edge-side and later overwrite it cloud-side when
// a prefix cut wins, which must not count as a change when the final
// state matches the input.
void SnapshotPlacements(const Chain& chain, std::vector<int>* out) {
  for (const LogicalOperatorPtr& op : chain) {
    out->push_back(op->placement());
    if (op->kind() == LogicalOperator::Kind::kFanOut) {
      for (const Chain& branch :
           static_cast<const FanOutNode&>(*op).branches()) {
        SnapshotPlacements(branch, out);
      }
    }
  }
}

class PlacementPass : public RewritePass {
 public:
  explicit PlacementPass(PlacementPassOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "placement"; }

  Status Apply(LogicalPlan* plan, bool* changed) override {
    if (options_.topology == nullptr) {
      return Status::InvalidArgument("placement pass without a topology");
    }
    // The cut decision needs a reachable cloud; resolving the route up
    // front also surfaces topology mistakes as a pass error instead of a
    // lowering error later.
    NM_RETURN_NOT_OK(options_.topology
                         ->ShortestPath(options_.edge_node,
                                        options_.cloud_node)
                         .status());
    flows_.clear();
    for (const auto& [key, stats] : options_.measured) {
      // Keys are "<path>/<OperatorName>" ("<OperatorName>" in the shared
      // prefix); operator names never contain '/'.
      const size_t slash = key.rfind('/');
      const std::string path =
          slash == std::string::npos ? std::string() : key.substr(0, slash);
      const std::string op_name =
          slash == std::string::npos ? key : key.substr(slash + 1);
      // Stats measured from an already-placed run include the lowered
      // channel pairs; they are transparent relays, so dropping their
      // entries re-aligns the flow with the logical operators (this is
      // what lets a deployment re-place itself from live traffic).
      if (op_name == "NetworkChannelSink" ||
          op_name == "NetworkChannelSource") {
        continue;
      }
      flows_[path].push_back(stats.bytes_out);
    }
    std::vector<int> before{plan->source_placement()};
    SnapshotPlacements(plan->ops(), &before);
    NM_RETURN_NOT_OK(
        PlaceChain(&plan->mutable_ops(), "", options_.source_bytes).status());
    plan->set_source_placement(options_.edge_node);
    std::vector<int> after{plan->source_placement()};
    SnapshotPlacements(plan->ops(), &after);
    if (after != before) *changed = true;
    return Status::OK();
  }

 private:
  // Annotates every node of `chain` (and nested branches) with the cloud
  // node — used when a shared-prefix cut moves a whole subtree off the
  // edge.
  void AnnotateSubtreeCloud(Chain* chain) {
    for (LogicalOperatorPtr& op : *chain) {
      op->set_placement(options_.cloud_node);
      if (op->kind() == LogicalOperator::Kind::kFanOut) {
        auto& fan = static_cast<FanOutNode&>(*op);
        for (Chain& branch : fan.mutable_branches()) {
          AnnotateSubtreeCloud(&branch);
        }
      }
    }
  }

  // Annotates the non-terminal nodes of `chain` for a cut after physical
  // operator index `cut` (-1: everything cloud-side): the first `cut`+1
  // physical operators (and the KeyBy markers they consume) stay on the
  // edge, the rest move to the cloud. Sinks and fan-outs are handled by
  // the caller.
  void AnnotateChainCut(Chain* chain, int cut) {
    int next_physical = 0;
    for (LogicalOperatorPtr& op : *chain) {
      if (op->kind() == LogicalOperator::Kind::kSink ||
          op->kind() == LogicalOperator::Kind::kFanOut) {
        continue;
      }
      op->set_placement(next_physical <= cut ? options_.edge_node
                                             : options_.cloud_node);
      // KeyBy is a marker folded into the next physical operator, so it
      // shares that operator's index and does not advance it.
      if (op->kind() != LogicalOperator::Kind::kKeyBy) ++next_physical;
    }
  }

  // Chooses and annotates the optimal cut(s) for `chain` (entered on the
  // edge carrying `in_bytes`), recursing into fan-out branches. Returns
  // the bytes the chosen placement ships edge -> cloud for this subtree.
  Result<uint64_t> PlaceChain(Chain* chain, const std::string& path,
                              uint64_t in_bytes) {
    // Measured bytes_out per physical operator of this chain segment, in
    // chain order. Leaf segments carry exactly one trailing sink entry
    // (the cut never uses it); fan-out segments carry none — anything
    // else is a shape mismatch.
    const std::vector<uint64_t>& flow = flows_[path];
    size_t num_physical = 0;
    for (const LogicalOperatorPtr& op : *chain) {
      if (op->kind() != LogicalOperator::Kind::kKeyBy &&
          op->kind() != LogicalOperator::Kind::kSink &&
          op->kind() != LogicalOperator::Kind::kFanOut) {
        ++num_physical;
      }
    }
    const bool fans_out =
        !chain->empty() &&
        chain->back()->kind() == LogicalOperator::Kind::kFanOut;
    const size_t expected = num_physical + (fans_out ? 0u : 1u);
    if (flow.size() != expected) {
      return Status::InvalidArgument(
          "measured stats do not match the plan shape at path '" + path +
          "': expected " + std::to_string(expected) + " entries, got " +
          std::to_string(flow.size()) + " — measure a run of the same "
          "optimized plan first");
    }
    // Cut after physical operator c ships that operator's measured output
    // (c == -1 ships the chain input). Ties break toward the deepest cut:
    // maximal pushdown, the paper's Figure 1 point.
    int best_cut = -1;
    uint64_t best_bytes = in_bytes;
    for (size_t c = 0; c < num_physical; ++c) {
      if (flow[c] <= best_bytes) {
        best_bytes = flow[c];
        best_cut = static_cast<int>(c);
      }
    }
    const uint64_t prefix_out =
        num_physical == 0 ? in_bytes : flow[num_physical - 1];

    if (!fans_out) {
      // Leaf chain: one cut; the sink stays in the cloud.
      AnnotateChainCut(chain, best_cut);
      if (!chain->empty() &&
          chain->back()->kind() == LogicalOperator::Kind::kSink) {
        chain->back()->set_placement(options_.cloud_node);
      }
      return best_bytes;
    }
    // Fan-out segment: first let every branch choose its own cut (the
    // prefix-on-edge hypothesis), then compare against the best single
    // prefix cut, which ships the stream once and runs the fan-out and
    // all branches in the cloud. A tie keeps the per-branch cuts —
    // deeper pushdown.
    auto& fan = static_cast<FanOutNode&>(*chain->back());
    uint64_t branch_sum = 0;
    for (size_t b = 0; b < fan.mutable_branches().size(); ++b) {
      NM_ASSIGN_OR_RETURN(
          const uint64_t branch_bytes,
          PlaceChain(&fan.mutable_branches()[b], DagBranchPath(path, b),
                     prefix_out));
      branch_sum += branch_bytes;
    }
    if (best_bytes < branch_sum) {
      AnnotateChainCut(chain, best_cut);
      chain->back()->set_placement(options_.cloud_node);
      for (Chain& branch : fan.mutable_branches()) {
        AnnotateSubtreeCloud(&branch);
      }
      return best_bytes;
    }
    AnnotateChainCut(chain, static_cast<int>(num_physical) - 1);
    chain->back()->set_placement(options_.edge_node);
    return branch_sum;
  }

  PlacementPassOptions options_;
  std::map<std::string, std::vector<uint64_t>> flows_;
};

// Shared walker of the two fixed-placement helpers: operators (and
// fan-outs) onto `op_node`, sinks onto `sink_node`.
void AnnotateChainFixed(std::vector<LogicalOperatorPtr>* chain, int op_node,
                        int sink_node) {
  for (LogicalOperatorPtr& op : *chain) {
    if (op->kind() == LogicalOperator::Kind::kSink) {
      op->set_placement(sink_node);
      continue;
    }
    op->set_placement(op_node);
    if (op->kind() == LogicalOperator::Kind::kFanOut) {
      auto& fan = static_cast<FanOutNode&>(*op);
      for (auto& branch : fan.mutable_branches()) {
        AnnotateChainFixed(&branch, op_node, sink_node);
      }
    }
  }
}

}  // namespace

void AnnotateEdgePushdownPlacement(LogicalPlan* plan, int edge_node,
                                   int cloud_node) {
  plan->set_source_placement(edge_node);
  AnnotateChainFixed(&plan->mutable_ops(), edge_node, cloud_node);
}

void AnnotateCloudPlacement(LogicalPlan* plan, int edge_node,
                            int cloud_node) {
  plan->set_source_placement(edge_node);
  AnnotateChainFixed(&plan->mutable_ops(), cloud_node, cloud_node);
}

RewritePassPtr MakePlacementPass(PlacementPassOptions options) {
  return std::make_unique<PlacementPass>(std::move(options));
}

RewritePassPtr MakeConstantFoldingPass() {
  return std::make_unique<ConstantFoldingPass>();
}

RewritePassPtr MakePredicatePushdownPass() {
  return std::make_unique<PredicatePushdownPass>();
}

RewritePassPtr MakeFilterFusionPass() {
  return std::make_unique<FilterFusionPass>();
}

RewritePassPtr MakeMapFusionPass() {
  return std::make_unique<MapFusionPass>();
}

RewritePassPtr MakeProjectionPushdownPass() {
  return std::make_unique<ProjectionPushdownPass>();
}

bool VerifyEachDefault() {
  if (const char* env = std::getenv("NM_VERIFY_EACH")) {
    return env[0] != '0';
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

PlanRewriter PlanRewriter::Default(const OptimizerOptions& options) {
  PlanRewriter rewriter;
  rewriter.max_iterations_ = options.max_iterations;
  rewriter.verify_each_ = options.verify_each;
  if (!options.enable) return rewriter;
  if (options.constant_folding) rewriter.AddPass(MakeConstantFoldingPass());
  if (options.predicate_pushdown) {
    rewriter.AddPass(MakePredicatePushdownPass());
  }
  if (options.filter_fusion) rewriter.AddPass(MakeFilterFusionPass());
  if (options.map_fusion) rewriter.AddPass(MakeMapFusionPass());
  if (options.projection_pushdown) {
    rewriter.AddPass(MakeProjectionPushdownPass());
  }
  return rewriter;
}

PlanRewriter& PlanRewriter::AddPass(RewritePassPtr pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

Status PlanRewriter::Rewrite(LogicalPlan* plan) const {
  for (size_t iter = 0; iter < max_iterations_; ++iter) {
    bool any_changed = false;
    for (const RewritePassPtr& pass : passes_) {
      bool changed = false;
      NM_RETURN_NOT_OK(pass->Apply(plan, &changed));
      if (changed && verify_each_) {
        analysis::VerifyContext vctx;
        // Rewrite runs on plans whose sinks may attach later
        // (`SetLeafSinks`), so termination is checked at Submit, not here.
        vctx.allow_unterminated = true;
        const Status verified = analysis::VerifyPlan(*plan, vctx);
        if (!verified.ok()) {
          return Status::Internal("verify-each: invariant violated after "
                                  "pass '" +
                                  pass->name() + "': " + verified.message());
        }
      }
      any_changed = any_changed || changed;
    }
    if (!any_changed) break;
  }
  return Status::OK();
}

}  // namespace nebulameos::nebula

#include "nebula/fault.hpp"

#include <cstdlib>

namespace nebulameos::nebula {

namespace {

Result<double> ParseRate(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double rate = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0) {
    return Status::InvalidArgument("fault profile rate '" + key + "=" + value +
                                   "' must be a number in [0, 1]");
  }
  return rate;
}

Result<uint64_t> ParseCount(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("fault profile count '" + key + "=" +
                                   value + "' must be a non-negative integer");
  }
  return static_cast<uint64_t>(n);
}

}  // namespace

Result<FaultProfile> ParseFaultProfile(const std::string& spec) {
  FaultProfile profile;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault profile entry '" + entry +
                                     "' is not key=value");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "drop") {
      NM_ASSIGN_OR_RETURN(profile.drop_rate, ParseRate(key, value));
    } else if (key == "dup" || key == "duplicate") {
      NM_ASSIGN_OR_RETURN(profile.duplicate_rate, ParseRate(key, value));
    } else if (key == "reorder") {
      NM_ASSIGN_OR_RETURN(profile.reorder_rate, ParseRate(key, value));
    } else if (key == "delay") {
      NM_ASSIGN_OR_RETURN(profile.delay_rate, ParseRate(key, value));
    } else if (key == "disconnect_after") {
      NM_ASSIGN_OR_RETURN(profile.disconnect_after_frames,
                          ParseCount(key, value));
    } else if (key == "seed") {
      NM_ASSIGN_OR_RETURN(profile.seed, ParseCount(key, value));
    } else {
      return Status::InvalidArgument(
          "unknown fault profile key '" + key +
          "' (expected drop/dup/reorder/delay/disconnect_after/seed)");
    }
  }
  return profile;
}

std::optional<FaultProfile> EnvFaultProfile() {
  const char* env = std::getenv("NM_FAULT_PROFILE");
  if (env == nullptr || *env == '\0') return std::nullopt;
  Result<FaultProfile> parsed = ParseFaultProfile(env);
  if (!parsed.ok()) return std::nullopt;
  return *parsed;
}

FaultProfile CombineFaultProfiles(const FaultProfile& a,
                                  const FaultProfile& b) {
  FaultProfile out;
  out.drop_rate = 1.0 - (1.0 - a.drop_rate) * (1.0 - b.drop_rate);
  out.duplicate_rate =
      1.0 - (1.0 - a.duplicate_rate) * (1.0 - b.duplicate_rate);
  out.reorder_rate = 1.0 - (1.0 - a.reorder_rate) * (1.0 - b.reorder_rate);
  out.delay_rate = 1.0 - (1.0 - a.delay_rate) * (1.0 - b.delay_rate);
  if (a.disconnect_after_frames == 0) {
    out.disconnect_after_frames = b.disconnect_after_frames;
  } else if (b.disconnect_after_frames == 0) {
    out.disconnect_after_frames = a.disconnect_after_frames;
  } else {
    out.disconnect_after_frames =
        std::min(a.disconnect_after_frames, b.disconnect_after_frames);
  }
  // Mix both seeds through one SplitMix64 step so (s, 0) and (0, s) draw
  // distinct streams.
  SplitMix64 mixer(a.seed ^ (b.seed * 0x9e3779b97f4a7c15ULL + 1));
  out.seed = mixer.Next();
  return out;
}

const char* ToString(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kBlock:
      return "block";
    case ShedPolicy::kDropOldest:
      return "drop-oldest";
    case ShedPolicy::kDropLate:
      return "drop-late";
  }
  return "unknown";
}

const char* ToString(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "Healthy";
    case HealthState::kDegraded:
      return "Degraded";
    case HealthState::kDisconnected:
      return "Disconnected";
  }
  return "unknown";
}

}  // namespace nebulameos::nebula

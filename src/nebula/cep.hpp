/// \file cep.hpp
/// \brief Complex event processing: NFA-based pattern matching over keyed
/// streams.
///
/// The paper's GCEP queries (battery-curve deviations, unscheduled stops,
/// repeated emergency braking) extend the CEP model of Ziehn [VLDB 2020 PhD
/// Workshop]. This kernel implements SASE-style patterns with
/// *skip-till-next-match* semantics:
///
/// * a `Pattern` is a sequence of named steps, each with a predicate over
///   the current event;
/// * steps may be negated (the pattern fails if a matching event arrives
///   before the following step matches) or Kleene-plus (`one_or_more`);
/// * a `within` duration bounds first-to-last event time;
/// * matching is partitioned by an optional key field.
///
/// Matches are projected to output rows through `Measure`s — aggregates
/// over the events bound to a step (first/last/count/min/max/avg of a
/// field). The `CepOperator` wraps the matcher as a standard stream
/// operator.

#pragma once

#include <deque>

#include "nebula/operator.hpp"

namespace nebulameos::nebula {

/// \brief One pattern step: `name: predicate` with optional quantifiers.
struct PatternStep {
  std::string name;      ///< binding name, e.g. "a"
  ExprPtr predicate;     ///< over the current event
  bool negated = false;  ///< kill runs when a matching event arrives
  bool one_or_more = false;  ///< Kleene plus (greedy)
};

/// \brief A sequential event pattern with time bound and partitioning.
struct Pattern {
  std::vector<PatternStep> steps;
  Duration within = 0;      ///< 0 = unbounded
  std::string key_field;    ///< "" = global
  std::string time_field;   ///< event-time field
  /// When true, a new run is not started while another run (same key) has
  /// matched only the first step — one pending run per key instead of one
  /// per triggering event. Use for alert-style patterns whose first step
  /// matches frequently (e.g. "train is moving"), where per-event run
  /// creation would explode state and duplicate alerts.
  bool suppress_duplicate_starts = false;
};

/// Sources of a measure value.
enum class MeasureKind { kFirst, kLast, kCount, kMin, kMax, kAvg };

/// \brief One output column computed from a matched step's events:
/// `kind(step.field) AS output_name`.
struct Measure {
  std::string output_name;
  MeasureKind kind;
  std::string step;   ///< step binding name
  std::string field;  ///< input field (ignored for kCount)

  static Measure First(std::string step, std::string field, std::string out) {
    return {std::move(out), MeasureKind::kFirst, std::move(step),
            std::move(field)};
  }
  static Measure Last(std::string step, std::string field, std::string out) {
    return {std::move(out), MeasureKind::kLast, std::move(step),
            std::move(field)};
  }
  static Measure Count(std::string step, std::string out) {
    return {std::move(out), MeasureKind::kCount, std::move(step), ""};
  }
  static Measure Min(std::string step, std::string field, std::string out) {
    return {std::move(out), MeasureKind::kMin, std::move(step),
            std::move(field)};
  }
  static Measure Max(std::string step, std::string field, std::string out) {
    return {std::move(out), MeasureKind::kMax, std::move(step),
            std::move(field)};
  }
  static Measure Avg(std::string step, std::string field, std::string out) {
    return {std::move(out), MeasureKind::kAvg, std::move(step),
            std::move(field)};
  }
};

/// \brief CEP operator: feeds events through the NFA and emits one row per
/// complete match.
///
/// Output schema: [key] + match_start + match_end + measures (kCount →
/// INT64, others DOUBLE).
class CepOperator : public Operator {
 public:
  static Result<OperatorPtr> Make(const Schema& input, Pattern pattern,
                                  std::vector<Measure> measures);

  std::string name() const override { return "CEP"; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  /// Selection-aware: feeds selected rows straight through the NFA —
  /// a hash-partitioned CEP input (engine worker strands) draws no extra
  /// pool buffers for materialization.
  Status ProcessBatch(const exec::Batch& input,
                      const BatchEmitFn& emit) override;
  void BindMetrics(metrics::MetricsRegistry* registry,
                   const std::string& prefix) override {
    Operator::BindMetrics(registry, prefix);
    BindLateShed(registry, prefix);
  }

  /// Currently active partial runs (all keys) — exposed for tests and
  /// capacity monitoring.
  size_t ActiveRuns() const;

 private:
  // A partial match: per-step folded measure state (events are not
  // retained — measures fold incrementally, keeping runs O(1) in space).
  struct StepFold {
    int64_t count = 0;
    double first = 0.0;
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;

    void Add(double v) {
      if (count == 0) {
        first = min = max = v;
      } else {
        min = std::min(min, v);
        max = std::max(max, v);
      }
      last = v;
      sum += v;
      ++count;
    }
  };

  struct Run {
    size_t step = 0;  // next step to satisfy
    Timestamp start = 0;
    Timestamp last = 0;
    int64_t kleene_matches = 0;   // matches folded into the current Kleene step
    std::vector<StepFold> folds;  // one per measure
  };

  using KeyValue = std::variant<int64_t, std::string>;

  CepOperator() = default;

  Status DoProcess(const exec::Batch& input, const EmitFn& emit);
  KeyValue KeyOf(const RecordView& rec) const;
  void EmitMatch(const KeyValue& key, const Run& run, TupleBuffer* out) const;
  // Advances `run` with event `rec` at time `t`; returns true when the run
  // survives (possibly completed — flagged via *completed).
  bool AdvanceRun(Run* run, const RecordView& rec, Timestamp t,
                  bool* completed) const;

  Schema input_schema_;
  Schema output_schema_;
  Pattern pattern_;
  std::vector<Measure> measures_;
  std::vector<int> measure_field_index_;  // -1 for kCount
  std::vector<int> step_index_by_name_;   // measure -> step index
  bool keyed_ = false;
  size_t key_index_ = 0;
  DataType key_type_ = DataType::kInt64;
  size_t time_index_ = 0;
  std::map<KeyValue, std::deque<Run>> runs_;
  size_t max_runs_per_key_ = 1024;  // guard against run explosion
  /// Per-key monotonicity guard: highest event time seen. A record with
  /// an earlier timestamp would run the NFA's `within` expiry backwards
  /// and corrupt partial matches, so it is shed and counted instead
  /// (`events_shed` / `op.<path>.CEP.late_shed`).
  std::map<KeyValue, Timestamp> max_time_;
};

}  // namespace nebulameos::nebula

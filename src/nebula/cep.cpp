#include "nebula/cep.hpp"

#include <algorithm>

namespace nebulameos::nebula {

Result<OperatorPtr> CepOperator::Make(const Schema& input, Pattern pattern,
                                      std::vector<Measure> measures) {
  if (pattern.steps.empty()) {
    return Status::InvalidArgument("pattern needs at least one step");
  }
  if (pattern.steps.front().negated) {
    return Status::InvalidArgument("pattern cannot start with a negated step");
  }
  if (pattern.steps.back().negated) {
    return Status::InvalidArgument("pattern cannot end with a negated step");
  }
  for (size_t i = 0; i + 1 < pattern.steps.size(); ++i) {
    if (pattern.steps[i].negated && pattern.steps[i + 1].negated) {
      return Status::InvalidArgument("consecutive negated steps unsupported");
    }
    if (pattern.steps[i].negated && pattern.steps[i].one_or_more) {
      return Status::InvalidArgument("negated step cannot be one_or_more");
    }
  }
  if (pattern.time_field.empty()) {
    return Status::InvalidArgument("pattern needs a time field");
  }
  auto op = std::unique_ptr<CepOperator>(new CepOperator());
  op->input_schema_ = input;
  for (PatternStep& step : pattern.steps) {
    if (!step.predicate) {
      return Status::InvalidArgument("pattern step without predicate: " +
                                     step.name);
    }
    NM_RETURN_NOT_OK(step.predicate->Bind(input));
  }
  op->keyed_ = !pattern.key_field.empty();
  if (op->keyed_) {
    NM_ASSIGN_OR_RETURN(op->key_index_, input.IndexOf(pattern.key_field));
    op->key_type_ = input.field(op->key_index_).type;
  }
  NM_ASSIGN_OR_RETURN(op->time_index_, input.IndexOf(pattern.time_field));
  // Resolve measures.
  for (const Measure& m : measures) {
    int step_idx = -1;
    for (size_t s = 0; s < pattern.steps.size(); ++s) {
      if (pattern.steps[s].name == m.step) {
        step_idx = static_cast<int>(s);
        break;
      }
    }
    if (step_idx < 0) {
      return Status::InvalidArgument("measure references unknown step: " +
                                     m.step);
    }
    if (pattern.steps[step_idx].negated) {
      return Status::InvalidArgument("measure over negated step: " + m.step);
    }
    op->step_index_by_name_.push_back(step_idx);
    if (m.kind == MeasureKind::kCount) {
      op->measure_field_index_.push_back(-1);
    } else {
      NM_ASSIGN_OR_RETURN(size_t fi, input.IndexOf(m.field));
      op->measure_field_index_.push_back(static_cast<int>(fi));
    }
  }
  // Output schema.
  std::vector<Field> fields;
  if (op->keyed_) fields.push_back(input.field(op->key_index_));
  fields.push_back({"match_start", DataType::kTimestamp});
  fields.push_back({"match_end", DataType::kTimestamp});
  for (const Measure& m : measures) {
    fields.push_back({m.output_name, m.kind == MeasureKind::kCount
                                         ? DataType::kInt64
                                         : DataType::kDouble});
  }
  NM_ASSIGN_OR_RETURN(op->output_schema_, Schema::Make(std::move(fields)));
  op->pattern_ = std::move(pattern);
  op->measures_ = std::move(measures);
  return OperatorPtr(std::move(op));
}

CepOperator::KeyValue CepOperator::KeyOf(const RecordView& rec) const {
  if (!keyed_) return int64_t{0};
  if (key_type_ == DataType::kText16 || key_type_ == DataType::kText32) {
    return rec.GetText(key_index_);
  }
  return rec.GetInt64(key_index_);
}

void CepOperator::EmitMatch(const KeyValue& key, const Run& run,
                            TupleBuffer* out) const {
  RecordWriter w = out->Append();
  size_t f = 0;
  if (keyed_) {
    if (std::holds_alternative<int64_t>(key)) {
      w.SetInt64(f, std::get<int64_t>(key));
    } else {
      w.SetText(f, std::get<std::string>(key));
    }
    ++f;
  }
  w.SetInt64(f++, run.start);
  w.SetInt64(f++, run.last);
  for (size_t m = 0; m < measures_.size(); ++m) {
    const StepFold& fold = run.folds[m];
    switch (measures_[m].kind) {
      case MeasureKind::kFirst:
        w.SetDouble(f++, fold.first);
        break;
      case MeasureKind::kLast:
        w.SetDouble(f++, fold.last);
        break;
      case MeasureKind::kCount:
        w.SetInt64(f++, fold.count);
        break;
      case MeasureKind::kMin:
        w.SetDouble(f++, fold.min);
        break;
      case MeasureKind::kMax:
        w.SetDouble(f++, fold.max);
        break;
      case MeasureKind::kAvg:
        w.SetDouble(f++, fold.count == 0
                             ? 0.0
                             : fold.sum / static_cast<double>(fold.count));
        break;
    }
  }
}

bool CepOperator::AdvanceRun(Run* run, const RecordView& rec, Timestamp t,
                             bool* completed) const {
  *completed = false;
  const size_t n = pattern_.steps.size();
  if (run->step >= n) return false;  // defensive; completed runs are removed
  const PatternStep& step = pattern_.steps[run->step];

  auto fold_measures = [&](size_t step_idx) {
    for (size_t m = 0; m < measures_.size(); ++m) {
      if (step_index_by_name_[m] != static_cast<int>(step_idx)) continue;
      const int fi = measure_field_index_[m];
      run->folds[m].Add(fi < 0 ? 1.0 : rec.GetNumeric(fi));
    }
  };

  if (step.negated) {
    if (ValueAsBool(step.predicate->Eval(rec))) {
      return false;  // forbidden event arrived — kill the run
    }
    // The event may instead satisfy the step after the negation.
    const size_t next = run->step + 1;
    const PatternStep& after = pattern_.steps[next];
    if (ValueAsBool(after.predicate->Eval(rec))) {
      fold_measures(next);
      run->last = t;
      if (after.one_or_more) {
        run->step = next;  // stay on the Kleene step (it has one match now)
        run->kleene_matches = 1;
      } else {
        run->step = next + 1;
      }
      *completed = run->step >= n && !after.one_or_more;
    }
    return true;
  }

  if (step.one_or_more) {
    // Greedy Kleene-plus with skip-till-next-match: once the step has at
    // least one event, an event matching the *next* step closes the loop.
    if (run->kleene_matches > 0 && run->step + 1 < n) {
      const PatternStep& next = pattern_.steps[run->step + 1];
      if (!next.negated && ValueAsBool(next.predicate->Eval(rec))) {
        fold_measures(run->step + 1);
        run->last = t;
        run->step += 2;
        run->kleene_matches = 0;
        *completed = run->step >= n;
        return true;
      }
    }
    if (ValueAsBool(step.predicate->Eval(rec))) {
      fold_measures(run->step);
      run->last = t;
      ++run->kleene_matches;
      // A final Kleene step completes on its first match; later matches
      // extend already-emitted patterns and are suppressed (one match per
      // maximal run start).
      if (run->step + 1 >= n && run->kleene_matches == 1) {
        *completed = true;
      }
    }
    return true;
  }

  if (ValueAsBool(step.predicate->Eval(rec))) {
    fold_measures(run->step);
    run->last = t;
    run->step += 1;
    // Skip over a trailing position if the next step is negated and the
    // run is otherwise complete — handled on later events.
    *completed = run->step >= n;
  }
  return true;
}

Status CepOperator::DoProcess(const exec::Batch& input, const EmitFn& emit) {
  CountIn(input);
  TupleBufferPtr out;
  auto ensure_out = [&]() {
    if (!out) out = ctx_->Allocate(output_schema_);
    if (out->full()) {
      CountOut(*out);
      emit(out);
      out = ctx_->Allocate(output_schema_);
    }
  };
  uint64_t shed = 0;
  for (size_t i = 0; i < input.NumRows(); ++i) {
    const RecordView rec = input.data->At(input.RowAt(i));
    const Timestamp t = rec.GetInt64(time_index_);
    const KeyValue key = KeyOf(rec);
    // Monotonicity guard: shed records whose event time regresses behind
    // their key's high-water mark (time runs forward through the NFA).
    auto [hwm, first_seen] = max_time_.try_emplace(key, t);
    if (!first_seen) {
      if (t < hwm->second) {
        ++shed;
        continue;
      }
      hwm->second = t;
    }
    std::deque<Run>& key_runs = runs_[key];
    // Expire runs outside the within bound.
    if (pattern_.within > 0) {
      while (!key_runs.empty() &&
             t - key_runs.front().start > pattern_.within) {
        key_runs.pop_front();
      }
    }
    // Advance existing runs.
    for (auto it = key_runs.begin(); it != key_runs.end();) {
      bool completed = false;
      const bool alive = AdvanceRun(&*it, rec, t, &completed);
      if (completed) {
        ensure_out();
        EmitMatch(key, *it, out.get());
        it = key_runs.erase(it);
        continue;
      }
      it = alive ? std::next(it) : key_runs.erase(it);
    }
    // Try to start a new run at step 0.
    const PatternStep& first = pattern_.steps.front();
    bool start_suppressed = false;
    if (pattern_.suppress_duplicate_starts) {
      for (const Run& run : key_runs) {
        if (run.step == 1 && run.kleene_matches == 0) {
          start_suppressed = true;  // an equivalent pending run exists
          break;
        }
      }
    }
    if (!start_suppressed && ValueAsBool(first.predicate->Eval(rec))) {
      if (key_runs.size() >= max_runs_per_key_) key_runs.pop_front();
      Run run;
      run.start = t;
      run.last = t;
      run.folds.resize(measures_.size());
      for (size_t m = 0; m < measures_.size(); ++m) {
        if (step_index_by_name_[m] != 0) continue;
        const int fi = measure_field_index_[m];
        run.folds[m].Add(fi < 0 ? 1.0 : rec.GetNumeric(fi));
      }
      if (first.one_or_more) {
        run.kleene_matches = 1;
        if (pattern_.steps.size() == 1) {
          ensure_out();
          EmitMatch(key, run, out.get());
        } else {
          key_runs.push_back(std::move(run));
        }
      } else if (pattern_.steps.size() == 1) {
        ensure_out();
        EmitMatch(key, run, out.get());
      } else {
        run.step = 1;
        key_runs.push_back(std::move(run));
      }
    }
  }
  if (shed > 0) CountShed(shed);
  if (out && !out->empty()) {
    CountOut(*out);
    emit(out);
  }
  return Status::OK();
}

Status CepOperator::Process(const TupleBufferPtr& input, const EmitFn& emit) {
  return DoProcess(exec::Batch(input), emit);
}

Status CepOperator::ProcessBatch(const exec::Batch& input,
                                 const BatchEmitFn& emit) {
  auto forward = [&emit](const TupleBufferPtr& out) {
    out->Seal();
    emit(exec::Batch(out));
  };
  return DoProcess(input, forward);
}

size_t CepOperator::ActiveRuns() const {
  size_t n = 0;
  for (const auto& [key, key_runs] : runs_) n += key_runs.size();
  return n;
}

}  // namespace nebulameos::nebula

#include "nebula/source.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/strings.hpp"
#include "nebula/expr.hpp"

namespace nebulameos::nebula {

namespace {

// Writes a Value into record field `f` according to the schema type.
void WriteValue(RecordWriter* w, const Schema& schema, size_t f,
                const Value& v) {
  switch (schema.field(f).type) {
    case DataType::kBool:
      w->SetBool(f, ValueAsBool(v));
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
      w->SetInt64(f, ValueAsInt64(v));
      break;
    case DataType::kDouble:
      w->SetDouble(f, ValueAsDouble(v));
      break;
    case DataType::kText16:
    case DataType::kText32:
      w->SetText(f, ValueToString(v));
      break;
  }
}

}  // namespace

// --- GeneratorSource -----------------------------------------------------------

GeneratorSource::GeneratorSource(Schema schema, GenerateFn generate,
                                 uint64_t max_events, std::string time_field)
    : schema_(std::move(schema)),
      generate_(std::move(generate)),
      max_events_(max_events),
      stamper_(schema_, time_field) {}

Result<bool> GeneratorSource::Fill(TupleBuffer* buffer) {
  if (done_) return false;
  while (!buffer->full()) {
    if (max_events_ != 0 && produced_ >= max_events_) {
      done_ = true;
      break;
    }
    RecordWriter w = buffer->Append();
    if (!generate_(&w)) {
      buffer->PopBack();  // the reserved slot was never written
      done_ = true;
      break;
    }
    ++produced_;
    stamper_.Observe(w.View());
  }
  stamper_.Stamp(buffer);
  return !done_;
}

// --- MemorySource --------------------------------------------------------------

MemorySource::MemorySource(Schema schema, std::vector<std::vector<Value>> data,
                           size_t rounds, std::string time_field)
    : schema_(std::move(schema)),
      data_(std::move(data)),
      rounds_(rounds == 0 ? 1 : rounds),
      stamper_(schema_, time_field) {}

Result<bool> MemorySource::Fill(TupleBuffer* buffer) {
  while (!buffer->full()) {
    if (pos_ >= data_.size()) {
      pos_ = 0;
      ++round_;
    }
    if (round_ >= rounds_ || data_.empty()) break;
    const std::vector<Value>& row = data_[pos_++];
    RecordWriter w = buffer->Append();
    for (size_t f = 0; f < schema_.num_fields() && f < row.size(); ++f) {
      WriteValue(&w, schema_, f, row[f]);
    }
    stamper_.Observe(w.View());
  }
  stamper_.Stamp(buffer);
  return round_ < rounds_ && !data_.empty();
}

// --- PacedSource ---------------------------------------------------------------

PacedSource::PacedSource(SourcePtr inner, double events_per_second)
    : inner_(std::move(inner)), events_per_second_(events_per_second) {}

Result<bool> PacedSource::Fill(TupleBuffer* buffer) {
  if (started_at_ == 0) started_at_ = MonotonicNowMicros();
  // Token bucket: how many events the elapsed wall clock entitles us to.
  while (true) {
    const double elapsed_s =
        static_cast<double>(MonotonicNowMicros() - started_at_) / 1e6;
    const uint64_t entitled =
        static_cast<uint64_t>(elapsed_s * events_per_second_);
    if (entitled > released_) {
      const size_t quota = std::min<uint64_t>(entitled - released_,
                                              buffer->capacity());
      // Fill into a bounded scratch buffer of exactly `quota` records by
      // letting the inner source fill and trimming is not possible here, so
      // temporarily limit via capacity: fill a sub-buffer.
      TupleBuffer scratch(inner_->schema(), quota);
      auto more = inner_->Fill(&scratch);
      if (!more.ok()) return more.status();
      for (size_t i = 0; i < scratch.size(); ++i) {
        buffer->Append().CopyFrom(scratch.At(i));
      }
      buffer->set_watermark(scratch.watermark());
      buffer->set_sequence_number(scratch.sequence_number());
      released_ += scratch.size();
      return *more;
    }
    // Not yet entitled to any event: wait out the gap to the next token.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

// --- CsvSource -----------------------------------------------------------------

Result<SourcePtr> CsvSource::Open(Schema schema, const std::string& path,
                                  bool skip_header, std::string time_field) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("csv file not found: " + path);
  if (skip_header) {
    int c;
    while ((c = std::fgetc(f)) != EOF && c != '\n') {
    }
  }
  return SourcePtr(new CsvSource(std::move(schema), f, std::move(time_field)));
}

CsvSource::~CsvSource() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<bool> CsvSource::Fill(TupleBuffer* buffer) {
  if (file_ == nullptr) return false;
  char line[4096];
  while (!buffer->full()) {
    if (std::fgets(line, sizeof(line), file_) == nullptr) {
      std::fclose(file_);
      file_ = nullptr;
      break;
    }
    std::string_view sv = Trim(line);
    if (sv.empty()) continue;
    const std::vector<std::string> cells = Split(sv, ',');
    if (cells.size() < schema_.num_fields()) {
      return Status::ParseError("csv row with too few cells: '" +
                                std::string(sv) + "'");
    }
    RecordWriter w = buffer->Append();
    for (size_t f = 0; f < schema_.num_fields(); ++f) {
      switch (schema_.field(f).type) {
        case DataType::kBool:
          w.SetBool(f, cells[f] == "true" || cells[f] == "1");
          break;
        case DataType::kInt64:
        case DataType::kTimestamp: {
          NM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(cells[f]));
          w.SetInt64(f, v);
          break;
        }
        case DataType::kDouble: {
          NM_ASSIGN_OR_RETURN(double v, ParseDouble(cells[f]));
          w.SetDouble(f, v);
          break;
        }
        case DataType::kText16:
        case DataType::kText32:
          w.SetText(f, cells[f]);
          break;
      }
    }
    stamper_.Observe(w.View());
  }
  stamper_.Stamp(buffer);
  return file_ != nullptr;
}

}  // namespace nebulameos::nebula

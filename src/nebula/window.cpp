#include "nebula/window.hpp"

namespace nebulameos::nebula {

Result<WindowAssigner> WindowAssigner::Make(const WindowSpec& spec) {
  if (const auto* t = std::get_if<TumblingWindowSpec>(&spec)) {
    if (t->size <= 0) {
      return Status::InvalidArgument("tumbling window size must be > 0");
    }
    return WindowAssigner(t->size, t->size);
  }
  if (const auto* s = std::get_if<SlidingWindowSpec>(&spec)) {
    if (s->size <= 0 || s->slide <= 0) {
      return Status::InvalidArgument("sliding window size/slide must be > 0");
    }
    if (s->slide > s->size) {
      return Status::InvalidArgument("sliding window slide must be <= size");
    }
    return WindowAssigner(s->size, s->slide);
  }
  return Status::InvalidArgument(
      "threshold windows are handled by ThresholdWindowOperator");
}

void WindowAssigner::AssignWindows(Timestamp t,
                                   std::vector<Timestamp>* starts) const {
  starts->clear();
  // Last window start at or before t (floor division robust for negatives).
  Timestamp last = (t / slide_) * slide_;
  if (last > t) last -= slide_;
  // All windows [start, start + size) containing t.
  for (Timestamp s = last; s > t - size_; s -= slide_) {
    starts->push_back(s);
  }
}

void AggState::Add(double v, Timestamp t) {
  if (count_ == 0) {
    min_ = max_ = first_ = last_ = v;
    first_t_ = last_t_ = t;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    if (t < first_t_) {
      first_ = v;
      first_t_ = t;
    }
    if (t >= last_t_) {
      last_ = v;
      last_t_ = t;
    }
  }
  sum_ += v;
  ++count_;
}

double AggState::Result(AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
      return static_cast<double>(count_);
    case AggKind::kSum:
      return sum_;
    case AggKind::kAvg:
      return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    case AggKind::kMin:
      return min_;
    case AggKind::kMax:
      return max_;
    case AggKind::kFirst:
      return first_;
    case AggKind::kLast:
      return last_;
  }
  return 0.0;
}

}  // namespace nebulameos::nebula

/// \file compiled_expr.hpp
/// \brief Type-specialized batch kernels compiled from expression trees.
///
/// The interpreter walks an `Expression` tree per record and boxes every
/// intermediate in a `Value` variant — exactly the overhead NebulaStream's
/// compiled query engine exists to avoid. At `CompilePlan` time each
/// expression whose leaves resolve to fixed schema offsets is lowered
/// (`Expression::CompileKernel`) into a tree of `ScalarKernel`s that
/// evaluate over a whole run of rows at once: field leaves are raw
/// offset-typed loads, operators are tight loops over primitive columns,
/// and the only per-row indirection left is one call for registered
/// extension functions (`FunctionExpression::EvalScalar`).
///
/// Kernels carry mutable per-node scratch columns, so one kernel instance
/// is bound to one pipeline (single-threaded use), matching the engine's
/// one-worker-per-query execution model. Widening between kernel types
/// replicates the interpreter's `ValueAsDouble`/`ValueAsInt64`/
/// `ValueAsBool` semantics exactly, so compiled and interpreted runs are
/// bit-identical.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nebula/exec/batch.hpp"
#include "nebula/expr.hpp"

namespace nebulameos::nebula::exec {

/// \brief Addresses a run of fixed-size rows, optionally through a
/// selection vector: row \p i lives at `base + (sel ? sel[i] : i) * stride`.
struct RowSpan {
  const uint8_t* base = nullptr;
  size_t stride = 0;
  const uint32_t* sel = nullptr;  ///< null = rows 0..count-1
  size_t count = 0;

  const uint8_t* Row(size_t i) const {
    return base + (sel != nullptr ? sel[i] : i) * stride;
  }
};

/// Builds the span of \p buffer's records filtered by \p sel (may be null).
RowSpan SpanOf(const TupleBuffer& buffer, const SelectionVector* sel);

/// Native result type of a kernel node.
enum class KernelType : uint8_t { kBool, kInt64, kDouble };

/// \brief One compiled expression node: batch evaluation into a typed
/// output column.
class ScalarKernel {
 public:
  explicit ScalarKernel(KernelType type) : type_(type) {}
  virtual ~ScalarKernel() = default;

  KernelType type() const { return type_; }

  /// Native-type evaluation; only the overload matching `type()` is
  /// implemented by a concrete kernel (the others assert).
  virtual void EvalBool(const RowSpan& rows, uint8_t* out) const;
  virtual void EvalInt64(const RowSpan& rows, int64_t* out) const;
  virtual void EvalDouble(const RowSpan& rows, double* out) const;

  /// Widening evaluation with interpreter-identical conversions
  /// (bool → 0/1, int64 ↔ double by cast, truthiness = "!= 0").
  void EvalAsBool(const RowSpan& rows, uint8_t* out) const;
  void EvalAsInt64(const RowSpan& rows, int64_t* out) const;
  void EvalAsDouble(const RowSpan& rows, double* out) const;

 private:
  KernelType type_;
  /// Conversion scratch for the widening wrappers (bytes, retyped per
  /// use); capacity stabilizes after the first batch.
  mutable std::vector<uint8_t> convert_scratch_;
};

using KernelPtr = std::unique_ptr<ScalarKernel>;

// --- Kernel constructors used by Expression::CompileKernel ------------------

/// Raw typed load of the field at \p offset; nullptr for text types.
KernelPtr MakeLoadKernel(DataType type, size_t offset);

KernelPtr MakeConstKernel(bool v);
KernelPtr MakeConstKernel(int64_t v);
KernelPtr MakeConstKernel(double v);

/// Arithmetic over both children; \p int_result selects the interpreter's
/// closed-integer evaluation (ArithExpr::int_result_).
KernelPtr MakeArithKernel(ArithOp op, bool int_result, KernelPtr lhs,
                          KernelPtr rhs);

/// Numeric comparison (both sides widened to double, like the interpreter).
KernelPtr MakeCompareKernel(CompareOp op, KernelPtr lhs, KernelPtr rhs);

KernelPtr MakeAndKernel(KernelPtr lhs, KernelPtr rhs);
KernelPtr MakeOrKernel(KernelPtr lhs, KernelPtr rhs);
KernelPtr MakeNotKernel(KernelPtr inner);

/// \brief Bridge for registered extension functions: evaluates every
/// runtime argument kernel into a double column, then calls \p fn once per
/// row over the widened argument values. `arg_kernels[i] == nullptr` marks
/// a bind-time constant argument whose widened value is `const_args[i]`.
/// One indirect call per row — no `Value` boxing, no per-row allocation.
KernelPtr MakeScalarFnKernel(KernelType out_type,
                             std::function<double(const double*)> fn,
                             std::vector<KernelPtr> arg_kernels,
                             std::vector<double> const_args);

// --- Cross-stage computed-column cache (kernel-level CSE) --------------------

/// \brief Shared computed columns for one fused kernel run: one slot per
/// distinct subexpression that `PlanKernelCse` found repeated across the
/// run's stages. The first cache kernel evaluated under the current epoch
/// materializes its column — scattered by *physical* row index, so later
/// stages with refined (subset) selections gather the right values without
/// recomputation. The owning `BatchKernelOperator` calls `Invalidate()`
/// once per input batch; like `CseCache`, staleness is by epoch and
/// nothing is cleared. Single-strand state: one cache belongs to one
/// operator instance.
class ColumnCache {
 public:
  struct Slot {
    /// Epoch the column was last materialized under (`~0` = never).
    uint64_t epoch = ~uint64_t{0};
    /// Column storage indexed by physical row index × element width.
    std::vector<uint8_t> data;
  };

  /// Adds a slot and returns its index.
  size_t AddSlot() {
    slots_.emplace_back();
    return slots_.size() - 1;
  }

  /// Starts a new input batch: every cached column becomes stale.
  void Invalidate() { ++epoch_; }

  Slot& slot(size_t i) { return slots_[i]; }
  uint64_t epoch() const { return epoch_; }
  size_t num_slots() const { return slots_.size(); }

 private:
  uint64_t epoch_ = 0;
  std::vector<Slot> slots_;
};

/// \brief Wraps \p inner so its result column is computed at most once per
/// cache epoch: the first evaluation runs \p inner over its span and
/// scatters the results into the slot by physical row index; subsequent
/// evaluations gather from the slot. Sound only under the fused-run
/// invariant that the first evaluation's span is a superset of every later
/// span (stage selections only shrink). Returns nullptr when \p inner is
/// null.
KernelPtr MakeColumnCacheKernel(std::shared_ptr<ColumnCache> cache,
                                size_t slot, KernelPtr inner);

}  // namespace nebulameos::nebula::exec

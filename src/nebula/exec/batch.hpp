/// \file batch.hpp
/// \brief The selection-vector batch contract between pipeline operators.
///
/// A `Batch` is the unit the engine pushes through a compiled pipeline: a
/// shared, sealed `TupleBuffer` plus an optional *selection vector* naming
/// the surviving row indices. Filters refine the selection instead of
/// copying survivors into a fresh buffer (DuckDB-style vectorized
/// filtering), and a fan-out hands the *same* batch to every branch — the
/// immutable-after-seal buffer contract (tuple_buffer.hpp) is what makes
/// that sharing safe without copies.
///
/// Selection-aware operators consume batches natively; legacy operators
/// fall back to `Operator::ProcessBatch`'s default, which materializes a
/// partial selection into a pooled buffer first (one gather, the same cost
/// the old copy-per-operator path paid on every hop).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nebula/tuple_buffer.hpp"

namespace nebulameos::nebula {
class ExecutionContext;
}  // namespace nebulameos::nebula

namespace nebulameos::nebula::exec {

/// Row indices into a `TupleBuffer`, ascending. Shared read-only across
/// fan-out branches.
using SelectionVector = std::vector<uint32_t>;
using SelectionPtr = std::shared_ptr<const SelectionVector>;

/// \brief One unit of batch data flow: a sealed buffer plus the selection
/// of rows that are logically present (null selection = every row).
struct Batch {
  TupleBufferPtr data;
  SelectionPtr selection;

  Batch() = default;
  explicit Batch(TupleBufferPtr d, SelectionPtr sel = nullptr)
      : data(std::move(d)), selection(std::move(sel)) {}

  /// True when every row of `data` is selected.
  bool IsFull() const { return selection == nullptr; }

  /// Number of logically present rows.
  size_t NumRows() const {
    return selection ? selection->size() : (data ? data->size() : 0);
  }

  /// Physical row index of logical row \p i.
  size_t RowAt(size_t i) const {
    return selection ? (*selection)[i] : i;
  }

  /// Bytes occupied by the selected rows (the flow-accounting size).
  size_t SizeBytes() const {
    return data ? NumRows() * data->schema().record_size() : 0;
  }
};

/// Moves a *partial* selection out of \p scratch into a batch sharing
/// \p in's buffer, leaving \p scratch empty and reusable — the one
/// allocation a selection-refining filter pays, and only when the result
/// is neither empty nor fully selective (callers handle those cases
/// first, allocation-free).
inline Batch TakePartialSelection(SelectionVector* scratch, const Batch& in) {
  Batch out(in.data,
            std::make_shared<SelectionVector>(std::move(*scratch)));
  *scratch = SelectionVector();
  return out;
}

/// Allocates a pooled output buffer of \p out_schema sized to hold every
/// selected row of \p batch, with the batch's stream metadata (sequence
/// number, watermark) carried over — the shared preamble of every
/// materialization. Fails when the rows exceed the pool's buffer shape.
/// The caller fills the buffer and seals it before emitting.
Result<TupleBufferPtr> AllocateOutputFor(const Batch& batch,
                                         const Schema& out_schema,
                                         ExecutionContext* ctx);

/// Gathers \p batch's selected rows into a fresh pooled buffer of the same
/// schema (metadata copied, buffer sealed) — the bridge legacy operators
/// pay when a partial selection reaches them.
Result<TupleBufferPtr> MaterializeBatch(const Batch& batch,
                                        ExecutionContext* ctx);

}  // namespace nebulameos::nebula::exec

#include "nebula/exec/kernels.hpp"

#include <cstring>

#include "common/time.hpp"

namespace nebulameos::nebula::exec {

Result<TupleBufferPtr> AllocateOutputFor(const Batch& batch,
                                         const Schema& out_schema,
                                         ExecutionContext* ctx) {
  if (ctx == nullptr) {
    return Status::Internal("materialize without an execution context");
  }
  TupleBufferPtr out = ctx->Allocate(out_schema);
  if (batch.NumRows() > out->capacity()) {
    return Status::Internal("batch of " + std::to_string(batch.NumRows()) +
                            " rows exceeds the pool buffer capacity");
  }
  out->set_sequence_number(batch.data->sequence_number());
  out->set_watermark(batch.data->watermark());
  return out;
}

Result<TupleBufferPtr> MaterializeBatch(const Batch& batch,
                                        ExecutionContext* ctx) {
  NM_ASSIGN_OR_RETURN(TupleBufferPtr out,
                      AllocateOutputFor(batch, batch.data->schema(), ctx));
  const size_t n = batch.NumRows();
  const size_t stride = batch.data->schema().record_size();
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out->Append().data(),
                batch.data->At(batch.RowAt(i)).data(), stride);
  }
  out->Seal();
  return out;
}

// --- CompiledPredicate ------------------------------------------------------

Result<CompiledPredicate> CompiledPredicate::Make(const Schema& input,
                                                  ExprPtr predicate) {
  if (!predicate) return Status::InvalidArgument("predicate is null");
  NM_RETURN_NOT_OK(predicate->Bind(input));
  KernelPtr kernel = predicate->CompileKernel(input);
  if (kernel == nullptr) {
    return Status::Unimplemented("expression is not batch-compilable: " +
                                 predicate->ToString());
  }
  return CompiledPredicate(std::move(predicate), std::move(kernel));
}

void CompiledPredicate::Select(const Batch& batch,
                               SelectionVector* out) const {
  const size_t n = batch.NumRows();
  if (n == 0) return;
  flags_.resize(n);
  const RowSpan span =
      SpanOf(*batch.data, batch.selection ? batch.selection.get() : nullptr);
  kernel_->EvalAsBool(span, flags_.data());
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    if (flags_[i] != 0) {
      out->push_back(static_cast<uint32_t>(batch.RowAt(i)));
    }
  }
}

// --- Field-copy coalescing and gathering ------------------------------------

namespace {

/// Appends a (src, dst, width) byte move, merging with the previous one
/// when both ranges are contiguous — adjacent kept fields become one
/// memcpy per row.
void AppendCopy(std::vector<FieldCopy>* copies, size_t src_offset,
                size_t dst_offset, size_t width) {
  if (!copies->empty()) {
    FieldCopy& last = copies->back();
    if (last.src_offset + last.width == src_offset &&
        last.dst_offset + last.width == dst_offset) {
      last.width += width;
      return;
    }
  }
  copies->push_back({src_offset, dst_offset, width});
}

/// Gathers the coalesced byte ranges of every selected row of \p batch
/// into the rows starting at \p dst_base (stride \p dst_stride) — the one
/// stride-walking loop both materializations share.
void GatherFieldCopies(const Batch& batch,
                       const std::vector<FieldCopy>& copies,
                       uint8_t* dst_base, size_t dst_stride) {
  const size_t n = batch.NumRows();
  const size_t src_stride = batch.data->schema().record_size();
  const uint8_t* src_base = batch.data->At(0).data();
  for (const FieldCopy& c : copies) {
    const uint8_t* s = src_base + c.src_offset;
    uint8_t* d = dst_base + c.dst_offset;
    for (size_t i = 0; i < n; ++i, d += dst_stride) {
      std::memcpy(d, s + batch.RowAt(i) * src_stride, c.width);
    }
  }
}

}  // namespace

// --- CompiledProjection -----------------------------------------------------

Result<CompiledProjection> CompiledProjection::Make(
    const Schema& input, const std::vector<std::string>& fields) {
  if (fields.empty()) return Status::InvalidArgument("project without fields");
  CompiledProjection proj;
  std::vector<Field> out_fields;
  std::vector<size_t> indices;
  for (const std::string& name : fields) {
    NM_ASSIGN_OR_RETURN(size_t idx, input.IndexOf(name));
    indices.push_back(idx);
    out_fields.push_back(input.field(idx));
  }
  NM_ASSIGN_OR_RETURN(proj.output_schema_,
                      Schema::Make(std::move(out_fields)));
  for (size_t f = 0; f < indices.size(); ++f) {
    AppendCopy(&proj.copies_, input.offset(indices[f]),
               proj.output_schema_.offset(f),
               DataTypeSize(proj.output_schema_.field(f).type));
  }
  return proj;
}

void CompiledProjection::Materialize(const Batch& batch,
                                     TupleBuffer* out) const {
  const size_t n = batch.NumRows();
  if (n == 0) return;
  const size_t first = out->size();
  for (size_t i = 0; i < n; ++i) out->Append();
  GatherFieldCopies(batch, copies_, out->MutableAt(first).data(),
                    output_schema_.record_size());
}

// --- CompiledMap ------------------------------------------------------------

Result<CompiledMap> CompiledMap::Make(const Schema& input,
                                      const std::vector<MapSpec>& specs) {
  NM_ASSIGN_OR_RETURN(MapLayout layout, PlanMapLayout(input, specs));
  CompiledMap map;
  map.output_schema_ = layout.output_schema;
  for (size_t f = 0; f < map.output_schema_.num_fields(); ++f) {
    const DataType type = map.output_schema_.field(f).type;
    if (layout.copy_from[f] >= 0) {
      const size_t src = static_cast<size_t>(layout.copy_from[f]);
      AppendCopy(&map.copies_, input.offset(src),
                 map.output_schema_.offset(f), DataTypeSize(type));
      continue;
    }
    if (type == DataType::kText16 || type == DataType::kText32) {
      return Status::Unimplemented("text-valued map spec stays interpreted");
    }
    const ExprPtr& expr = layout.exprs[layout.expr_of[f]];
    KernelPtr kernel = expr->CompileKernel(input);
    if (kernel == nullptr) {
      return Status::Unimplemented("expression is not batch-compilable: " +
                                   expr->ToString());
    }
    map.computed_.push_back(
        {std::move(kernel), map.output_schema_.offset(f), type});
  }
  map.exprs_ = std::move(layout.exprs);
  return map;
}

void CompiledMap::Materialize(const Batch& batch, TupleBuffer* out) const {
  const size_t n = batch.NumRows();
  if (n == 0) return;
  const size_t dst_stride = output_schema_.record_size();
  const size_t first = out->size();
  for (size_t i = 0; i < n; ++i) out->Append();
  uint8_t* dst_base = out->MutableAt(first).data();
  GatherFieldCopies(batch, copies_, dst_base, dst_stride);
  const RowSpan span =
      SpanOf(*batch.data, batch.selection ? batch.selection.get() : nullptr);
  for (const Computed& comp : computed_) {
    uint8_t* d = dst_base + comp.dst_offset;
    switch (comp.type) {
      case DataType::kBool: {
        column_scratch_.resize(n);
        uint8_t* col = column_scratch_.data();
        comp.kernel->EvalAsBool(span, col);
        for (size_t i = 0; i < n; ++i, d += dst_stride) *d = col[i];
        break;
      }
      case DataType::kInt64:
      case DataType::kTimestamp: {
        column_scratch_.resize(n * sizeof(int64_t));
        int64_t* col = reinterpret_cast<int64_t*>(column_scratch_.data());
        comp.kernel->EvalAsInt64(span, col);
        for (size_t i = 0; i < n; ++i, d += dst_stride) {
          std::memcpy(d, &col[i], sizeof(int64_t));
        }
        break;
      }
      case DataType::kDouble: {
        column_scratch_.resize(n * sizeof(double));
        double* col = reinterpret_cast<double*>(column_scratch_.data());
        comp.kernel->EvalAsDouble(span, col);
        for (size_t i = 0; i < n; ++i, d += dst_stride) {
          std::memcpy(d, &col[i], sizeof(double));
        }
        break;
      }
      case DataType::kText16:
      case DataType::kText32:
        break;  // rejected in Make
    }
  }
}

// --- BatchKernelOperator ----------------------------------------------------

std::string BatchKernelOperator::name() const {
  std::string out = "BatchKernels(";
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += "+";
    out += stages_[i].name;
  }
  return out + ")";
}

Status BatchKernelOperator::ProcessBatch(const Batch& input,
                                         const BatchEmitFn& emit) {
  CountIn(input);
  // New input buffer: any kernel-CSE columns cached from the previous
  // batch are stale.
  if (cse_cache_ != nullptr) cse_cache_->Invalidate();
  Batch cur = input;
  bool alive = cur.NumRows() > 0;
  // One clock read per stage *boundary* (adjacent stages share it), so the
  // per-stage latency instrumentation costs stages+1 clock calls per batch.
  const bool timed = !stages_.empty() && stages_.front().process_micros;
  int64_t stage_start = timed ? MonotonicNowMicros() : 0;
  for (Stage& stage : stages_) {
    const uint64_t rows_in = alive ? cur.NumRows() : 0;
    stage.stats.AddIn(rows_in, rows_in * stage.in_record_size);
    if (alive) {
      if (stage.predicate.has_value()) {
        scratch_sel_.clear();
        stage.predicate->Select(cur, &scratch_sel_);
        if (scratch_sel_.empty()) {
          alive = false;
        } else if (scratch_sel_.size() != cur.NumRows()) {
          cur = TakePartialSelection(&scratch_sel_, cur);
        }
        // Fully selective: `cur` (and its buffer) passes through untouched.
      } else {
        const Schema& out_schema = stage.map.has_value()
                                       ? stage.map->output_schema()
                                       : stage.projection->output_schema();
        NM_ASSIGN_OR_RETURN(TupleBufferPtr out,
                            AllocateOutputFor(cur, out_schema, ctx_));
        if (stage.map.has_value()) {
          stage.map->Materialize(cur, out.get());
        } else {
          stage.projection->Materialize(cur, out.get());
        }
        out->Seal();
        cur = Batch(std::move(out));
      }
    }
    const uint64_t rows_out = alive ? cur.NumRows() : 0;
    stage.stats.AddOut(rows_out, rows_out * stage.out_record_size);
    if (timed) {
      const int64_t now = MonotonicNowMicros();
      stage.process_micros->Record(now - stage_start);
      stage.batch_rows->Record(static_cast<int64_t>(rows_in));
      stage_start = now;
    }
  }
  if (!alive) return Status::OK();
  CountOut(cur);
  emit(cur);
  return Status::OK();
}

Status BatchKernelOperator::Process(const TupleBufferPtr& input,
                                    const EmitFn& emit) {
  // Bridge for record-at-a-time callers: batch outputs that still carry a
  // selection materialize before crossing back into the buffer API.
  Status inner = Status::OK();
  auto forward = [this, &emit, &inner](const Batch& out) {
    if (out.IsFull()) {
      emit(out.data);
      return;
    }
    auto materialized = MaterializeBatch(out, ctx_);
    if (!materialized.ok()) {
      if (inner.ok()) inner = materialized.status();
      return;
    }
    emit(*materialized);
  };
  Status s = ProcessBatch(Batch(input), forward);
  return s.ok() ? inner : s;
}

void BatchKernelOperator::AppendStats(
    const std::string& prefix,
    std::vector<std::pair<std::string, OperatorStats>>* out) const {
  for (const Stage& stage : stages_) {
    out->emplace_back(prefix + stage.name, stage.stats.Snapshot());
  }
}

void BatchKernelOperator::BindMetrics(metrics::MetricsRegistry* registry,
                                      const std::string& prefix) {
  for (Stage& stage : stages_) {
    stage.process_micros = registry->GetHistogram(
        "op." + prefix + stage.name + ".process_micros");
    stage.batch_rows =
        registry->GetHistogram("op." + prefix + stage.name + ".batch_rows");
  }
}

// --- BatchKernelCompiler ----------------------------------------------------

BatchKernelCompiler::BatchKernelCompiler(Schema input)
    : current_(std::move(input)),
      op_(std::unique_ptr<BatchKernelOperator>(new BatchKernelOperator())) {}

bool BatchKernelCompiler::AddFilter(const ExprPtr& predicate) {
  auto compiled = CompiledPredicate::Make(current_, predicate);
  if (!compiled.ok()) return false;
  BatchKernelOperator::Stage stage;
  stage.name = "Filter";
  stage.in_record_size = current_.record_size();
  stage.out_record_size = current_.record_size();
  stage.predicate.emplace(std::move(*compiled));
  op_->stages_.push_back(std::move(stage));
  return true;
}

bool BatchKernelCompiler::AddMap(const std::vector<MapSpec>& specs) {
  auto compiled = CompiledMap::Make(current_, specs);
  if (!compiled.ok()) return false;
  BatchKernelOperator::Stage stage;
  stage.name = "Map";
  stage.in_record_size = current_.record_size();
  stage.map.emplace(std::move(*compiled));
  stage.out_record_size = stage.map->output_schema().record_size();
  current_ = stage.map->output_schema();
  op_->stages_.push_back(std::move(stage));
  return true;
}

bool BatchKernelCompiler::AddProject(const std::vector<std::string>& fields) {
  auto compiled = CompiledProjection::Make(current_, fields);
  if (!compiled.ok()) return false;
  BatchKernelOperator::Stage stage;
  stage.name = "Project";
  stage.in_record_size = current_.record_size();
  stage.projection.emplace(std::move(*compiled));
  stage.out_record_size = stage.projection->output_schema().record_size();
  current_ = stage.projection->output_schema();
  op_->stages_.push_back(std::move(stage));
  return true;
}

void BatchKernelCompiler::AttachCseCache(std::shared_ptr<ColumnCache> cache) {
  op_->cse_cache_ = std::move(cache);
}

OperatorPtr BatchKernelCompiler::Finish() && {
  op_->output_schema_ = current_;
  return OperatorPtr(std::move(op_));
}

}  // namespace nebulameos::nebula::exec

/// \file kernels.hpp
/// \brief Compiled batch operators: predicate selection, projection and
/// map materialization over whole tuple buffers, and the fused
/// `BatchKernelOperator` that `CompilePlan` lowers Filter→Map→Project
/// runs into.
///
/// The compiled path inverts the interpreter's shape: instead of walking
/// an expression tree per record and copying survivors per operator, a
/// `CompiledPredicate` evaluates its kernel over the whole batch and
/// produces a *selection vector*; a `CompiledMap`/`CompiledProjection`
/// materializes only the selected rows, computing each expression as a
/// column. A maximal run of Filter/Map/Project nodes within one placement
/// segment fuses into a single `BatchKernelOperator` pass, and a fully
/// selective filter passes the input buffer through untouched (zero-copy).
///
/// Compilation is best-effort: `BatchKernelCompiler::Add*` refuses any
/// node whose expressions do not lower to kernels (text comparisons,
/// extension functions without a scalar hook), and `CompilePlan` falls
/// back to the interpreted operator for that node.

#pragma once

#include <optional>

#include "nebula/exec/compiled_expr.hpp"
#include "nebula/operators.hpp"

namespace nebulameos::nebula::exec {

/// \brief A filter predicate compiled to a batch kernel: evaluates over
/// every selected row of a batch and emits the surviving row indices.
class CompiledPredicate {
 public:
  /// Binds \p predicate against \p input and lowers it; fails with
  /// `Unimplemented` when the expression does not compile (the caller
  /// falls back to the interpreted `FilterOperator`).
  static Result<CompiledPredicate> Make(const Schema& input,
                                        ExprPtr predicate);

  /// Appends the physical row indices of \p batch's surviving rows to
  /// \p out.
  void Select(const Batch& batch, SelectionVector* out) const;

 private:
  CompiledPredicate(ExprPtr expr, KernelPtr kernel)
      : expr_(std::move(expr)), kernel_(std::move(kernel)) {}

  ExprPtr expr_;  ///< keeps the kernel's bound state alive
  KernelPtr kernel_;
  mutable std::vector<uint8_t> flags_;
};

/// One contiguous byte range moved per row by a materialization (adjacent
/// pass-through fields coalesce into a single memcpy).
struct FieldCopy {
  size_t src_offset;
  size_t dst_offset;
  size_t width;
};

/// \brief A projection compiled to coalesced byte moves: gathers the
/// selected rows' kept fields into an output buffer.
class CompiledProjection {
 public:
  static Result<CompiledProjection> Make(const Schema& input,
                                         const std::vector<std::string>& fields);

  const Schema& output_schema() const { return output_schema_; }

  /// Appends one output record per selected row of \p batch to \p out
  /// (which must have capacity for them).
  void Materialize(const Batch& batch, TupleBuffer* out) const;

 private:
  CompiledProjection() = default;

  Schema output_schema_;
  std::vector<FieldCopy> copies_;
};

/// \brief A map compiled to pass-through byte moves plus one kernel
/// column per computed field, evaluated only for the selected rows.
class CompiledMap {
 public:
  /// Fails with `Unimplemented` when any spec expression does not compile
  /// or computes a text field (the caller falls back to `MapOperator`).
  static Result<CompiledMap> Make(const Schema& input,
                                  const std::vector<MapSpec>& specs);

  const Schema& output_schema() const { return output_schema_; }

  /// Appends one output record per selected row of \p batch to \p out.
  void Materialize(const Batch& batch, TupleBuffer* out) const;

 private:
  struct Computed {
    KernelPtr kernel;
    size_t dst_offset;
    DataType type;
  };

  CompiledMap() = default;

  Schema output_schema_;
  std::vector<FieldCopy> copies_;
  std::vector<Computed> computed_;
  std::vector<ExprPtr> exprs_;  ///< keep kernels' bound state alive
  mutable std::vector<uint8_t> column_scratch_;
};

class BatchKernelCompiler;

/// \brief The physical form of a fused Filter→Map→Project run: one batch
/// pass per input buffer. Predicates refine a selection vector over the
/// current buffer, materializations gather only surviving rows, and when
/// every stage is fully selective the input buffer is emitted untouched.
///
/// Flow counters are tracked per fused stage under the original operator
/// names ("Filter", "Map", "Project"), so `QueryStats::operator_stats` —
/// and the placement pass consuming it — see the same entry sequence as
/// the unfused chain. The base `stats()` accessor reports the fused run
/// as a whole (batch in / batch out), not any single stage.
class BatchKernelOperator final : public Operator {
 public:
  std::string name() const override;
  const Schema& output_schema() const override { return output_schema_; }

  Status Process(const TupleBufferPtr& input, const EmitFn& emit) override;
  Status ProcessBatch(const Batch& input, const BatchEmitFn& emit) override;
  void AppendStats(
      const std::string& prefix,
      std::vector<std::pair<std::string, OperatorStats>>* out) const override;

  /// Binds one latency/batch-size histogram pair *per fused stage* under
  /// the stage's original operator name (`op.<prefix>Filter.process_micros`
  /// ...), matching the unfused chain's metric names — the same parity
  /// `AppendStats` keeps for flow counters. The base-class whole-operator
  /// histograms stay unbound: stages time themselves inside
  /// `ProcessBatch`, and the engine's outer timing hook no-ops.
  void BindMetrics(metrics::MetricsRegistry* registry,
                   const std::string& prefix) override;

  size_t num_stages() const { return stages_.size(); }

  /// The kernel-CSE column cache `CompilePlan` attached (null when the
  /// run shares nothing) — exposed for tests.
  const std::shared_ptr<ColumnCache>& cse_cache() const { return cse_cache_; }

 private:
  friend class BatchKernelCompiler;

  struct Stage {
    std::string name;
    size_t in_record_size = 0;
    size_t out_record_size = 0;
    // Exactly one of the three is set.
    std::optional<CompiledPredicate> predicate;
    std::optional<CompiledMap> map;
    std::optional<CompiledProjection> projection;
    FlowCounters stats;
    metrics::Histogram* process_micros = nullptr;  ///< null until bound
    metrics::Histogram* batch_rows = nullptr;      ///< null until bound
  };

  BatchKernelOperator() = default;

  Schema output_schema_;
  std::vector<Stage> stages_;
  /// Selection scratch: filter stages select into this and only wrap it
  /// in a shared_ptr when a *partial* selection is actually emitted —
  /// fully-selective and empty results allocate nothing.
  SelectionVector scratch_sel_;
  /// Kernel-level CSE state shared by this run's stages; invalidated at
  /// the top of every `ProcessBatch` so cached columns never leak across
  /// input batches. Null when `CompilePlan` found nothing to share.
  std::shared_ptr<ColumnCache> cse_cache_;
};

/// \brief Incremental builder used by `CompilePlan`: absorbs consecutive
/// Filter/Map/Project nodes while their expressions compile; a refused
/// node (or any other operator kind) ends the run, the built operator is
/// flushed into the pipeline, and lowering continues interpreted.
class BatchKernelCompiler {
 public:
  explicit BatchKernelCompiler(Schema input);

  /// Each Add* returns false — leaving the run unchanged — when the
  /// node's expressions do not lower to kernels.
  bool AddFilter(const ExprPtr& predicate);
  bool AddMap(const std::vector<MapSpec>& specs);
  bool AddProject(const std::vector<std::string>& fields);

  /// Attaches the kernel-CSE column cache whose cache kernels the absorbed
  /// expressions reference (`PlanKernelCse`); the fused operator
  /// invalidates it once per input batch.
  void AttachCseCache(std::shared_ptr<ColumnCache> cache);

  size_t num_stages() const { return op_->num_stages(); }

  /// Schema after the absorbed stages.
  const Schema& current_schema() const { return current_; }

  /// Finalizes the fused operator (at least one stage required).
  OperatorPtr Finish() &&;

 private:
  Schema current_;
  std::unique_ptr<BatchKernelOperator> op_;
};

}  // namespace nebulameos::nebula::exec

#include "nebula/exec/compiled_expr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "nebula/exec/batch.hpp"

namespace nebulameos::nebula::exec {

RowSpan SpanOf(const TupleBuffer& buffer, const SelectionVector* sel) {
  RowSpan span;
  span.base = buffer.empty() ? nullptr : buffer.At(0).data();
  span.stride = buffer.schema().record_size();
  span.sel = sel != nullptr ? sel->data() : nullptr;
  span.count = sel != nullptr ? sel->size() : buffer.size();
  return span;
}

void ScalarKernel::EvalBool(const RowSpan&, uint8_t*) const {
  assert(false && "kernel is not bool-typed");
}
void ScalarKernel::EvalInt64(const RowSpan&, int64_t*) const {
  assert(false && "kernel is not int64-typed");
}
void ScalarKernel::EvalDouble(const RowSpan&, double*) const {
  assert(false && "kernel is not double-typed");
}

namespace {

template <typename T>
T* Retype(std::vector<uint8_t>* bytes, size_t count) {
  bytes->resize(count * sizeof(T));
  return reinterpret_cast<T*>(bytes->data());
}

}  // namespace

void ScalarKernel::EvalAsDouble(const RowSpan& rows, double* out) const {
  switch (type_) {
    case KernelType::kDouble:
      EvalDouble(rows, out);
      return;
    case KernelType::kInt64: {
      int64_t* tmp = Retype<int64_t>(&convert_scratch_, rows.count);
      EvalInt64(rows, tmp);
      for (size_t i = 0; i < rows.count; ++i) {
        out[i] = static_cast<double>(tmp[i]);
      }
      return;
    }
    case KernelType::kBool: {
      uint8_t* tmp = Retype<uint8_t>(&convert_scratch_, rows.count);
      EvalBool(rows, tmp);
      for (size_t i = 0; i < rows.count; ++i) {
        out[i] = tmp[i] != 0 ? 1.0 : 0.0;
      }
      return;
    }
  }
}

void ScalarKernel::EvalAsInt64(const RowSpan& rows, int64_t* out) const {
  switch (type_) {
    case KernelType::kInt64:
      EvalInt64(rows, out);
      return;
    case KernelType::kDouble: {
      double* tmp = Retype<double>(&convert_scratch_, rows.count);
      EvalDouble(rows, tmp);
      for (size_t i = 0; i < rows.count; ++i) {
        out[i] = static_cast<int64_t>(tmp[i]);
      }
      return;
    }
    case KernelType::kBool: {
      uint8_t* tmp = Retype<uint8_t>(&convert_scratch_, rows.count);
      EvalBool(rows, tmp);
      for (size_t i = 0; i < rows.count; ++i) {
        out[i] = tmp[i] != 0 ? 1 : 0;
      }
      return;
    }
  }
}

void ScalarKernel::EvalAsBool(const RowSpan& rows, uint8_t* out) const {
  switch (type_) {
    case KernelType::kBool:
      EvalBool(rows, out);
      return;
    case KernelType::kInt64: {
      int64_t* tmp = Retype<int64_t>(&convert_scratch_, rows.count);
      EvalInt64(rows, tmp);
      for (size_t i = 0; i < rows.count; ++i) {
        out[i] = tmp[i] != 0 ? 1 : 0;
      }
      return;
    }
    case KernelType::kDouble: {
      double* tmp = Retype<double>(&convert_scratch_, rows.count);
      EvalDouble(rows, tmp);
      for (size_t i = 0; i < rows.count; ++i) {
        out[i] = tmp[i] != 0.0 ? 1 : 0;
      }
      return;
    }
  }
}

namespace {

// --- Leaves -----------------------------------------------------------------

class LoadBoolKernel final : public ScalarKernel {
 public:
  explicit LoadBoolKernel(size_t offset)
      : ScalarKernel(KernelType::kBool), offset_(offset) {}

  void EvalBool(const RowSpan& rows, uint8_t* out) const override {
    if (rows.sel == nullptr) {
      const uint8_t* p = rows.base + offset_;
      for (size_t i = 0; i < rows.count; ++i, p += rows.stride) {
        out[i] = *p != 0 ? 1 : 0;
      }
      return;
    }
    for (size_t i = 0; i < rows.count; ++i) {
      out[i] = *(rows.Row(i) + offset_) != 0 ? 1 : 0;
    }
  }

 private:
  size_t offset_;
};

// Tight strided load shared by the typed leaf kernels. Each kernel
// overrides only its native Eval method, so a type-mismatched call still
// hits the asserting ScalarKernel default.
template <typename T>
void LoadColumn(const RowSpan& rows, size_t offset, T* out) {
  if (rows.sel == nullptr) {
    const uint8_t* p = rows.base + offset;
    for (size_t i = 0; i < rows.count; ++i, p += rows.stride) {
      std::memcpy(&out[i], p, sizeof(T));
    }
    return;
  }
  for (size_t i = 0; i < rows.count; ++i) {
    std::memcpy(&out[i], rows.Row(i) + offset, sizeof(T));
  }
}

class LoadInt64Kernel final : public ScalarKernel {
 public:
  explicit LoadInt64Kernel(size_t offset)
      : ScalarKernel(KernelType::kInt64), offset_(offset) {}
  void EvalInt64(const RowSpan& rows, int64_t* out) const override {
    LoadColumn(rows, offset_, out);
  }

 private:
  size_t offset_;
};

class LoadDoubleKernel final : public ScalarKernel {
 public:
  explicit LoadDoubleKernel(size_t offset)
      : ScalarKernel(KernelType::kDouble), offset_(offset) {}
  void EvalDouble(const RowSpan& rows, double* out) const override {
    LoadColumn(rows, offset_, out);
  }

 private:
  size_t offset_;
};

class ConstBoolKernel final : public ScalarKernel {
 public:
  explicit ConstBoolKernel(bool v)
      : ScalarKernel(KernelType::kBool), v_(v ? 1 : 0) {}
  void EvalBool(const RowSpan& rows, uint8_t* out) const override {
    std::memset(out, v_, rows.count);
  }

 private:
  uint8_t v_;
};

class ConstInt64Kernel final : public ScalarKernel {
 public:
  explicit ConstInt64Kernel(int64_t v)
      : ScalarKernel(KernelType::kInt64), v_(v) {}
  void EvalInt64(const RowSpan& rows, int64_t* out) const override {
    for (size_t i = 0; i < rows.count; ++i) out[i] = v_;
  }

 private:
  int64_t v_;
};

class ConstDoubleKernel final : public ScalarKernel {
 public:
  explicit ConstDoubleKernel(double v)
      : ScalarKernel(KernelType::kDouble), v_(v) {}
  void EvalDouble(const RowSpan& rows, double* out) const override {
    for (size_t i = 0; i < rows.count; ++i) out[i] = v_;
  }

 private:
  double v_;
};

// --- Arithmetic -------------------------------------------------------------

class ArithInt64Kernel final : public ScalarKernel {
 public:
  ArithInt64Kernel(ArithOp op, KernelPtr lhs, KernelPtr rhs)
      : ScalarKernel(KernelType::kInt64),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  void EvalInt64(const RowSpan& rows, int64_t* out) const override {
    a_.resize(rows.count);
    b_.resize(rows.count);
    lhs_->EvalAsInt64(rows, a_.data());
    rhs_->EvalAsInt64(rows, b_.data());
    switch (op_) {
      case ArithOp::kAdd:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] + b_[i];
        return;
      case ArithOp::kSub:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] - b_[i];
        return;
      case ArithOp::kMul:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] * b_[i];
        return;
      case ArithOp::kMod:
        for (size_t i = 0; i < rows.count; ++i) {
          out[i] = b_[i] == 0 ? 0 : a_[i] % b_[i];
        }
        return;
      case ArithOp::kDiv:
        // int_result_ is never true for division (ArithExpr::Bind).
        assert(false && "integer division kernel");
        return;
    }
  }

 private:
  ArithOp op_;
  KernelPtr lhs_;
  KernelPtr rhs_;
  mutable std::vector<int64_t> a_, b_;
};

class ArithDoubleKernel final : public ScalarKernel {
 public:
  ArithDoubleKernel(ArithOp op, KernelPtr lhs, KernelPtr rhs)
      : ScalarKernel(KernelType::kDouble),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  void EvalDouble(const RowSpan& rows, double* out) const override {
    a_.resize(rows.count);
    b_.resize(rows.count);
    lhs_->EvalAsDouble(rows, a_.data());
    rhs_->EvalAsDouble(rows, b_.data());
    switch (op_) {
      case ArithOp::kAdd:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] + b_[i];
        return;
      case ArithOp::kSub:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] - b_[i];
        return;
      case ArithOp::kMul:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] * b_[i];
        return;
      case ArithOp::kDiv:
        for (size_t i = 0; i < rows.count; ++i) {
          out[i] = b_[i] == 0.0 ? 0.0 : a_[i] / b_[i];
        }
        return;
      case ArithOp::kMod:
        for (size_t i = 0; i < rows.count; ++i) {
          out[i] = b_[i] == 0.0 ? 0.0 : std::fmod(a_[i], b_[i]);
        }
        return;
    }
  }

 private:
  ArithOp op_;
  KernelPtr lhs_;
  KernelPtr rhs_;
  mutable std::vector<double> a_, b_;
};

// --- Comparison and logic ---------------------------------------------------

class CompareKernel final : public ScalarKernel {
 public:
  CompareKernel(CompareOp op, KernelPtr lhs, KernelPtr rhs)
      : ScalarKernel(KernelType::kBool),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  void EvalBool(const RowSpan& rows, uint8_t* out) const override {
    a_.resize(rows.count);
    b_.resize(rows.count);
    lhs_->EvalAsDouble(rows, a_.data());
    rhs_->EvalAsDouble(rows, b_.data());
    switch (op_) {
      case CompareOp::kLt:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] < b_[i];
        return;
      case CompareOp::kLe:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] <= b_[i];
        return;
      case CompareOp::kGt:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] > b_[i];
        return;
      case CompareOp::kGe:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] >= b_[i];
        return;
      case CompareOp::kEq:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] == b_[i];
        return;
      case CompareOp::kNe:
        for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] != b_[i];
        return;
    }
  }

 private:
  CompareOp op_;
  KernelPtr lhs_;
  KernelPtr rhs_;
  mutable std::vector<double> a_, b_;
};

class LogicalKernel final : public ScalarKernel {
 public:
  LogicalKernel(bool is_and, KernelPtr lhs, KernelPtr rhs)
      : ScalarKernel(KernelType::kBool),
        is_and_(is_and),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  void EvalBool(const RowSpan& rows, uint8_t* out) const override {
    a_.resize(rows.count);
    b_.resize(rows.count);
    // Both sides always evaluate (expressions are pure reads), which is
    // observably identical to the interpreter's short-circuit.
    lhs_->EvalAsBool(rows, a_.data());
    rhs_->EvalAsBool(rows, b_.data());
    if (is_and_) {
      for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] & b_[i];
    } else {
      for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] | b_[i];
    }
  }

 private:
  bool is_and_;
  KernelPtr lhs_;
  KernelPtr rhs_;
  mutable std::vector<uint8_t> a_, b_;
};

class NotKernel final : public ScalarKernel {
 public:
  explicit NotKernel(KernelPtr inner)
      : ScalarKernel(KernelType::kBool), inner_(std::move(inner)) {}

  void EvalBool(const RowSpan& rows, uint8_t* out) const override {
    a_.resize(rows.count);
    inner_->EvalAsBool(rows, a_.data());
    for (size_t i = 0; i < rows.count; ++i) out[i] = a_[i] ^ 1;
  }

 private:
  KernelPtr inner_;
  mutable std::vector<uint8_t> a_;
};

// --- Extension-function bridge ----------------------------------------------

class ScalarFnKernel final : public ScalarKernel {
 public:
  ScalarFnKernel(KernelType out_type, std::function<double(const double*)> fn,
                 std::vector<KernelPtr> args, std::vector<double> const_args)
      : ScalarKernel(out_type),
        fn_(std::move(fn)),
        args_(std::move(args)),
        const_args_(std::move(const_args)),
        cols_(args_.size()) {}

  void EvalBool(const RowSpan& rows, uint8_t* out) const override {
    EvalRows(rows, [out](size_t i, double r) { out[i] = r != 0.0 ? 1 : 0; });
  }
  void EvalInt64(const RowSpan& rows, int64_t* out) const override {
    EvalRows(rows,
             [out](size_t i, double r) { out[i] = static_cast<int64_t>(r); });
  }
  void EvalDouble(const RowSpan& rows, double* out) const override {
    EvalRows(rows, [out](size_t i, double r) { out[i] = r; });
  }

 private:
  template <typename Store>
  void EvalRows(const RowSpan& rows, const Store& store) const {
    const size_t arity = args_.size();
    row_args_.resize(arity);
    for (size_t a = 0; a < arity; ++a) {
      if (args_[a] == nullptr) {
        row_args_[a] = const_args_[a];
        continue;
      }
      cols_[a].resize(rows.count);
      args_[a]->EvalAsDouble(rows, cols_[a].data());
    }
    for (size_t i = 0; i < rows.count; ++i) {
      for (size_t a = 0; a < arity; ++a) {
        if (args_[a] != nullptr) row_args_[a] = cols_[a][i];
      }
      store(i, fn_(row_args_.data()));
    }
  }

  std::function<double(const double*)> fn_;
  std::vector<KernelPtr> args_;  ///< nullptr entries are constants
  std::vector<double> const_args_;
  mutable std::vector<std::vector<double>> cols_;
  mutable std::vector<double> row_args_;
};

// --- Cross-stage computed-column cache (kernel-level CSE) -------------------

// Caches by *physical* row index: the compute path scatters results through
// the span's selection so that a later stage's refined selection — a subset
// of the rows computed here — gathers the same values the inner kernel
// would produce. Element width follows the inner kernel's native type.
class ColumnCacheKernel final : public ScalarKernel {
 public:
  ColumnCacheKernel(std::shared_ptr<ColumnCache> cache, size_t slot,
                    KernelPtr inner)
      : ScalarKernel(inner->type()),
        cache_(std::move(cache)),
        slot_(slot),
        inner_(std::move(inner)) {}

  void EvalBool(const RowSpan& rows, uint8_t* out) const override {
    Eval<uint8_t>(rows, out, [this](const RowSpan& r, uint8_t* o) {
      inner_->EvalBool(r, o);
    });
  }
  void EvalInt64(const RowSpan& rows, int64_t* out) const override {
    Eval<int64_t>(rows, out, [this](const RowSpan& r, int64_t* o) {
      inner_->EvalInt64(r, o);
    });
  }
  void EvalDouble(const RowSpan& rows, double* out) const override {
    Eval<double>(rows, out, [this](const RowSpan& r, double* o) {
      inner_->EvalDouble(r, o);
    });
  }

 private:
  template <typename T, typename Compute>
  void Eval(const RowSpan& rows, T* out, const Compute& compute) const {
    ColumnCache::Slot& slot = cache_->slot(slot_);
    if (slot.epoch == cache_->epoch()) {
      const T* col = reinterpret_cast<const T*>(slot.data.data());
      for (size_t i = 0; i < rows.count; ++i) {
        out[i] = col[rows.sel != nullptr ? rows.sel[i] : i];
      }
      return;
    }
    compute(rows, out);
    size_t max_phys = rows.count;  // sel == nullptr: indices 0..count-1
    if (rows.sel != nullptr) {
      max_phys = 0;
      for (size_t i = 0; i < rows.count; ++i) {
        max_phys = std::max<size_t>(max_phys, rows.sel[i] + 1);
      }
    }
    if (slot.data.size() < max_phys * sizeof(T)) {
      slot.data.resize(max_phys * sizeof(T));
    }
    T* col = reinterpret_cast<T*>(slot.data.data());
    for (size_t i = 0; i < rows.count; ++i) {
      col[rows.sel != nullptr ? rows.sel[i] : i] = out[i];
    }
    slot.epoch = cache_->epoch();
  }

  std::shared_ptr<ColumnCache> cache_;
  size_t slot_;
  KernelPtr inner_;
};

}  // namespace

KernelPtr MakeColumnCacheKernel(std::shared_ptr<ColumnCache> cache,
                                size_t slot, KernelPtr inner) {
  if (inner == nullptr) return nullptr;
  return std::make_unique<ColumnCacheKernel>(std::move(cache), slot,
                                             std::move(inner));
}

KernelPtr MakeLoadKernel(DataType type, size_t offset) {
  switch (type) {
    case DataType::kBool:
      return std::make_unique<LoadBoolKernel>(offset);
    case DataType::kInt64:
    case DataType::kTimestamp:
      return std::make_unique<LoadInt64Kernel>(offset);
    case DataType::kDouble:
      return std::make_unique<LoadDoubleKernel>(offset);
    case DataType::kText16:
    case DataType::kText32:
      return nullptr;  // text stays on the interpreter
  }
  return nullptr;
}

KernelPtr MakeConstKernel(bool v) {
  return std::make_unique<ConstBoolKernel>(v);
}
KernelPtr MakeConstKernel(int64_t v) {
  return std::make_unique<ConstInt64Kernel>(v);
}
KernelPtr MakeConstKernel(double v) {
  return std::make_unique<ConstDoubleKernel>(v);
}

KernelPtr MakeArithKernel(ArithOp op, bool int_result, KernelPtr lhs,
                          KernelPtr rhs) {
  if (lhs == nullptr || rhs == nullptr) return nullptr;
  if (int_result) {
    return std::make_unique<ArithInt64Kernel>(op, std::move(lhs),
                                              std::move(rhs));
  }
  return std::make_unique<ArithDoubleKernel>(op, std::move(lhs),
                                             std::move(rhs));
}

KernelPtr MakeCompareKernel(CompareOp op, KernelPtr lhs, KernelPtr rhs) {
  if (lhs == nullptr || rhs == nullptr) return nullptr;
  return std::make_unique<CompareKernel>(op, std::move(lhs), std::move(rhs));
}

KernelPtr MakeAndKernel(KernelPtr lhs, KernelPtr rhs) {
  if (lhs == nullptr || rhs == nullptr) return nullptr;
  return std::make_unique<LogicalKernel>(true, std::move(lhs),
                                         std::move(rhs));
}

KernelPtr MakeOrKernel(KernelPtr lhs, KernelPtr rhs) {
  if (lhs == nullptr || rhs == nullptr) return nullptr;
  return std::make_unique<LogicalKernel>(false, std::move(lhs),
                                         std::move(rhs));
}

KernelPtr MakeNotKernel(KernelPtr inner) {
  if (inner == nullptr) return nullptr;
  return std::make_unique<NotKernel>(std::move(inner));
}

KernelPtr MakeScalarFnKernel(KernelType out_type,
                             std::function<double(const double*)> fn,
                             std::vector<KernelPtr> arg_kernels,
                             std::vector<double> const_args) {
  return std::make_unique<ScalarFnKernel>(out_type, std::move(fn),
                                          std::move(arg_kernels),
                                          std::move(const_args));
}

}  // namespace nebulameos::nebula::exec

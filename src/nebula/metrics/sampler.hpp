/// \file sampler.hpp
/// \brief Periodic metrics sampler: a small stoppable thread invoking a
/// sampling callback at a fixed interval.
///
/// The engine runs one sampler per query when
/// `EngineOptions::metrics_interval > 0`; the callback derives windowed
/// rates (ingest/emit throughput since the previous tick) into gauges, so
/// a live snapshot carries *current* throughput, not just lifetime
/// totals. The sampler fires one final tick on `Stop` so short runs
/// (shorter than one interval) still publish their rates.

#pragma once

#include <functional>
#include <thread>

#include "common/mutex.hpp"
#include "common/time.hpp"

namespace nebulameos::nebula::metrics {

/// \brief Owns the sampling thread. Construction starts it; `Stop` (or
/// destruction) fires a final tick and joins.
class Sampler {
 public:
  /// \p tick receives the elapsed microseconds since the previous tick.
  Sampler(Duration interval, std::function<void(int64_t elapsed_micros)> tick);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stops the thread after one final tick. Idempotent.
  void Stop() NM_EXCLUDES(mutex_);

  /// Ticks fired so far (final tick included).
  uint64_t ticks() const NM_EXCLUDES(mutex_);

 private:
  void Run() NM_EXCLUDES(mutex_);

  Duration interval_;
  std::function<void(int64_t)> tick_;
  mutable nebulameos::Mutex mutex_;
  CondVar cv_;
  bool stop_ NM_GUARDED_BY(mutex_) = false;
  uint64_t ticks_ NM_GUARDED_BY(mutex_) = 0;
  std::thread thread_;  // last: starts after the state above is ready
};

}  // namespace nebulameos::nebula::metrics

/// \file metrics.hpp
/// \brief The observability subsystem: named counters, gauges and
/// fixed-bucket latency histograms behind a thread-safe registry.
///
/// This is the measurement layer the ROADMAP's QoS direction reads from
/// (Nephele-style enforcement starts with cheap, always-on latency and
/// throughput measurement at the operator and channel level). Design
/// rules, in order:
///
/// 1. **The record path is lock-free.** `Counter::Add`, `Gauge::Set` and
///    `Histogram::Record` are relaxed atomic operations — safe to call
///    from any worker strand while another thread snapshots, and cheap
///    enough to stay enabled in production runs (the bench gate holds the
///    measured overhead under 5%).
/// 2. **Instruments are registered once, recorded many times.** The
///    registry hands out stable pointers (`GetCounter` & friends); callers
///    resolve their instruments at bind time (engine `Start`) and record
///    through the raw pointer afterwards. Instruments live as long as the
///    registry.
/// 3. **Snapshots are value copies.** `MetricsRegistry::Snapshot` reads
///    every instrument into plain structs — a `MetricsSnapshot` owns its
///    numbers, never references live atomics, and can be exported (JSON,
///    Prometheus text) or diffed long after the query died.
///
/// Histograms are HdrHistogram-flavoured power-of-two buckets: value `v`
/// lands in bucket `bit_width(v)` (bucket 0 holds `v <= 0`), so 64 buckets
/// cover the full non-negative int64 range with bounded relative error and
/// a branch-free record path. Percentiles interpolate linearly inside the
/// selected bucket — deterministic, and exact at bucket boundaries.

#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"

namespace nebulameos::nebula::metrics {

/// Number of histogram buckets: bucket 0 for `v <= 0`, buckets 1..62 for
/// the power-of-two ranges [2^(b-1), 2^b - 1], bucket 63 for the rest
/// ([2^62, int64 max] — `bit_width` of any positive int64 is at most 63,
/// so the top bucket doubles as its own power-of-two range and the
/// catch-all).
inline constexpr size_t kHistogramBuckets = 64;

/// Bucket index of \p value: 0 for non-positive values, otherwise
/// `bit_width(value)` (1 → bucket 1, 2..3 → bucket 2, 4..7 → bucket 3...).
inline size_t HistogramBucketOf(int64_t value) {
  if (value <= 0) return 0;
  size_t width = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++width;
  }
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

/// Smallest value landing in \p bucket (inclusive).
inline int64_t HistogramBucketLow(size_t bucket) {
  return bucket == 0 ? 0 : static_cast<int64_t>(1ull << (bucket - 1));
}

/// Largest value landing in \p bucket (inclusive; bucket 0 is just {<=0}).
inline int64_t HistogramBucketHigh(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kHistogramBuckets - 1) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>((1ull << bucket) - 1);
}

/// \brief Monotonic counter. Relaxed-atomic `Add`; any thread may record.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (queue depth, rate). Stored
/// as double so derived rates fit without a second instrument kind.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot;

/// \brief Fixed-bucket power-of-two histogram with a lock-free record
/// path: one relaxed `fetch_add` per bucket hit plus running count/sum and
/// CAS-maintained min/max. Concurrent `Record` calls from any number of
/// threads are safe; `Snapshot` may run concurrently and sees a
/// near-current, internally *approximately* consistent view (counts may
/// lead sums by in-flight records — the usual monitoring contract).
class Histogram {
 public:
  void Record(int64_t value) {
    buckets_[HistogramBucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    UpdateMin(value);
    UpdateMax(value);
  }

  HistogramSnapshot Snapshot() const;

 private:
  void UpdateMin(int64_t value) {
    int64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(int64_t value) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{std::numeric_limits<int64_t>::min()};
};

/// \brief Value copy of one histogram: plain numbers, no atomics, no
/// reference back to the live instrument.
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< 0 when empty
  int64_t max = 0;  ///< 0 when empty
  std::vector<uint64_t> buckets;  ///< kHistogramBuckets entries

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// The \p p-quantile (p in [0, 1]) by cumulative bucket count, linearly
  /// interpolated inside the selected bucket and clamped to the observed
  /// [min, max]. Deterministic; 0 when the histogram is empty.
  double Percentile(double p) const;

  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }
};

/// \brief Value copy of a whole registry at one instant: three name-keyed
/// maps of plain values. Copyable, comparable, exportable.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// One JSON object: `{"counters": {...}, "gauges": {...}, "histograms":
  /// {"name": {"count": n, "mean": m, "p50": ..., "p95": ..., "p99": ...,
  /// "max": ...}}}`. Stable key order (maps are sorted).
  std::string ToJson() const;

  /// Prometheus text exposition (one `# TYPE` line plus samples per
  /// metric; histogram quantiles as `<name>{quantile="0.5"}` samples).
  /// Metric names are sanitized to `[a-zA-Z0-9_:]`.
  std::string ToPrometheusText() const;
};

/// \brief Thread-safe owner of named instruments. `Get*` registers on
/// first use and returns a stable pointer — resolve once, record through
/// the pointer (lock-free) ever after. Looking a name up as two different
/// instrument kinds is a programming error and returns the existing
/// instrument's slot as nullptr-kind mismatch (callers assert).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name) NM_EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name) NM_EXCLUDES(mutex_);
  Histogram* GetHistogram(const std::string& name) NM_EXCLUDES(mutex_);

  /// Point-in-time value copy of every registered instrument.
  MetricsSnapshot Snapshot() const NM_EXCLUDES(mutex_);

 private:
  mutable nebulameos::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      NM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ NM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      NM_GUARDED_BY(mutex_);
};

}  // namespace nebulameos::nebula::metrics

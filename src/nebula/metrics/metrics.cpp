#include "nebula/metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace nebulameos::nebula::metrics {

// --- Histogram ---------------------------------------------------------------

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kHistogramBuckets);
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const int64_t min = min_.load(std::memory_order_relaxed);
  const int64_t max = max_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0 : min;
  s.max = s.count == 0 ? 0 : max;
  return s;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target observation, 1-based; ceil so p = 1.0 selects the
  // last observation and p = 0.0 the first.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(p * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] < rank) {
      cumulative += buckets[b];
      continue;
    }
    // Interpolate by the rank's position inside this bucket's value range.
    const double low = static_cast<double>(HistogramBucketLow(b));
    // The top bucket is open-ended; cap interpolation at the observed max.
    const double high =
        b >= kHistogramBuckets - 1
            ? static_cast<double>(max)
            : static_cast<double>(HistogramBucketHigh(b));
    const double within =
        static_cast<double>(rank - cumulative) / static_cast<double>(buckets[b]);
    const double v = low + (high - low) * within;
    return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
  }
  return static_cast<double>(max);
}

// --- Export ------------------------------------------------------------------

namespace {

// JSON string escaping for metric names (quotes, backslashes, control
// bytes — names are internal but an operator name can carry parentheses
// and arbitrary user field names).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  std::string s = os.str();
  // Trim trailing zeros (keep one digit after the point).
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::string HistogramJson(const HistogramSnapshot& h) {
  std::string out = "{";
  out += "\"count\": " + std::to_string(h.count);
  out += ", \"sum\": " + std::to_string(h.sum);
  out += ", \"min\": " + std::to_string(h.min);
  out += ", \"max\": " + std::to_string(h.max);
  out += ", \"mean\": " + FormatDouble(h.Mean());
  out += ", \"p50\": " + FormatDouble(h.P50());
  out += ", \"p95\": " + FormatDouble(h.P95());
  out += ", \"p99\": " + FormatDouble(h.P99());
  out += "}";
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + FormatDouble(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + HistogramJson(hist);
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " summary\n";
    out += pname + "{quantile=\"0.5\"} " + FormatDouble(hist.P50()) + "\n";
    out += pname + "{quantile=\"0.95\"} " + FormatDouble(hist.P95()) + "\n";
    out += pname + "{quantile=\"0.99\"} " + FormatDouble(hist.P99()) + "\n";
    out += pname + "_sum " + std::to_string(hist.sum) + "\n";
    out += pname + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

// --- Registry ----------------------------------------------------------------

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

}  // namespace nebulameos::nebula::metrics

#include "nebula/metrics/sampler.hpp"

#include <chrono>

namespace nebulameos::nebula::metrics {

Sampler::Sampler(Duration interval,
                 std::function<void(int64_t elapsed_micros)> tick)
    : interval_(interval > 0 ? interval : 1),
      tick_(std::move(tick)),
      thread_([this] { Run(); }) {}

Sampler::~Sampler() { Stop(); }

void Sampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      // Already stopped; the thread may even be joined.
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

uint64_t Sampler::ticks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

void Sampler::Run() {
  int64_t last = MonotonicNowMicros();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::microseconds(interval_),
                 [this] { return stop_; });
    const bool stopping = stop_;
    const int64_t now = MonotonicNowMicros();
    const int64_t elapsed = now - last;
    last = now;
    // A zero-elapsed wakeup (spurious, or a Stop racing the clock's
    // granularity) is skipped — except the final tick, which always
    // fires so short runs publish at least once; callbacks guard
    // elapsed <= 0 before dividing.
    const bool fire = elapsed > 0 || stopping;
    // Tick outside the lock: the callback may touch the registry, and
    // `ticks()` readers must not wait on it.
    lock.unlock();
    if (fire) tick_(elapsed);
    lock.lock();
    if (fire) ++ticks_;
    if (stopping) return;
  }
}

}  // namespace nebulameos::nebula::metrics

#include "nebula/metrics/sampler.hpp"

#include <chrono>

namespace nebulameos::nebula::metrics {

Sampler::Sampler(Duration interval,
                 std::function<void(int64_t elapsed_micros)> tick)
    : interval_(interval > 0 ? interval : 1),
      tick_(std::move(tick)),
      thread_([this] { Run(); }) {}

Sampler::~Sampler() { Stop(); }

void Sampler::Stop() {
  {
    MutexLock lock(mutex_);
    if (stop_) {
      // Already stopped; the thread may even be joined.
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

uint64_t Sampler::ticks() const {
  MutexLock lock(mutex_);
  return ticks_;
}

void Sampler::Run() {
  int64_t last = MonotonicNowMicros();
  MutexLock lock(mutex_);
  for (;;) {
    // Timed wait until `interval_` elapses or Stop signals; spurious
    // wakeups re-wait for the remaining slice.
    const int64_t wait_from = MonotonicNowMicros();
    int64_t remaining = interval_;
    while (!stop_ && remaining > 0) {
      if (cv_.WaitFor(mutex_, std::chrono::microseconds(remaining)) ==
          std::cv_status::timeout) {
        break;
      }
      remaining = interval_ - (MonotonicNowMicros() - wait_from);
    }
    const bool stopping = stop_;
    const int64_t now = MonotonicNowMicros();
    const int64_t elapsed = now - last;
    last = now;
    // A zero-elapsed wakeup (spurious, or a Stop racing the clock's
    // granularity) is skipped — except the final tick, which always
    // fires so short runs publish at least once; callbacks guard
    // elapsed <= 0 before dividing.
    const bool fire = elapsed > 0 || stopping;
    // Tick outside the lock: the callback may touch the registry, and
    // `ticks()` readers must not wait on it.
    lock.Unlock();
    if (fire) tick_(elapsed);
    lock.Lock();
    if (fire) ++ticks_;
    if (stopping) return;
  }
}

}  // namespace nebulameos::nebula::metrics

#include "nebula/operators.hpp"

#include <algorithm>
#include <cstring>

#include "common/strings.hpp"

namespace nebulameos::nebula {

TupleBufferPtr ExecutionContext::Allocate(const Schema& schema) {
  std::shared_ptr<BufferManager> pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = pools_[schema.ToString()];
    if (!slot) {
      slot = BufferManager::Create(schema, tuples_per_buffer_, pool_size_);
    }
    pool = slot;
  }
  return pool->Acquire();
}

uint64_t ExecutionContext::TotalBuffersAcquired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [key, pool] : pools_) total += pool->total_acquired();
  return total;
}

// --- Operator batch bridge ----------------------------------------------------

namespace {

// Shared interpreted-materialization loop of MapOperator::ProcessBatch and
// ProjectOperator::ProcessBatch: allocate one output buffer, write one
// record per selected row, seal. `write` receives (input record, writer).
template <typename WriteFn>
Result<exec::Batch> MaterializeRows(ExecutionContext* ctx,
                                    const Schema& out_schema,
                                    const exec::Batch& input,
                                    const WriteFn& write) {
  NM_ASSIGN_OR_RETURN(TupleBufferPtr out,
                      exec::AllocateOutputFor(input, out_schema, ctx));
  for (size_t i = 0; i < input.NumRows(); ++i) {
    const RecordView rec = input.data->At(input.RowAt(i));
    RecordWriter w = out->Append();
    write(rec, &w);
  }
  out->Seal();
  return exec::Batch(std::move(out));
}

}  // namespace

Status Operator::ProcessBatch(const exec::Batch& input,
                              const BatchEmitFn& emit) {
  TupleBufferPtr buf = input.data;
  if (!input.IsFull()) {
    // Legacy operator fed a partial selection: one gather, then the
    // record-at-a-time path runs unchanged.
    NM_ASSIGN_OR_RETURN(buf, exec::MaterializeBatch(input, ctx_));
  }
  auto forward = [&emit](const TupleBufferPtr& out) {
    out->Seal();
    emit(exec::Batch(out));
  };
  return Process(buf, forward);
}

// --- Filter -------------------------------------------------------------------

Result<OperatorPtr> FilterOperator::Make(const Schema& input,
                                         ExprPtr predicate) {
  if (!predicate) return Status::InvalidArgument("filter without predicate");
  // Memoize repeated subtrees — e.g. `f(x) > lo && f(x) < hi` evaluates
  // f(x) once per record. Rebuilt nodes come out unbound; the Bind below
  // covers originals and rewrites alike.
  CsePlan cse = PlanCse({std::move(predicate)});
  predicate = std::move(cse.roots.front());
  NM_RETURN_NOT_OK(predicate->Bind(input));
  return OperatorPtr(
      new FilterOperator(input, std::move(predicate), std::move(cse.cache)));
}

Status FilterOperator::Process(const TupleBufferPtr& input,
                               const EmitFn& emit) {
  CountIn(*input);
  TupleBufferPtr out;  // allocated on the first survivor only
  for (size_t i = 0; i < input->size(); ++i) {
    const RecordView rec = input->At(i);
    if (cse_cache_) cse_cache_->BeginRecord();
    if (!ValueAsBool(predicate_->Eval(rec))) continue;
    if (!out) {
      out = ctx_->Allocate(schema_);
      out->set_watermark(input->watermark());
      out->set_sequence_number(input->sequence_number());
    } else if (out->full()) {
      CountOut(*out);
      emit(out);
      out = ctx_->Allocate(schema_);
      out->set_watermark(input->watermark());
      out->set_sequence_number(input->sequence_number());
    }
    out->Append().CopyFrom(rec);
  }
  // No survivors → no emit: watermark-only advance must not draw a pooled
  // buffer (windows fire on event times, not buffer watermarks).
  if (out) {
    CountOut(*out);
    emit(out);
  }
  return Status::OK();
}

Status FilterOperator::ProcessBatch(const exec::Batch& input,
                                    const BatchEmitFn& emit) {
  CountIn(input);
  const size_t n = input.NumRows();
  if (n == 0) return Status::OK();
  scratch_sel_.clear();
  for (size_t i = 0; i < n; ++i) {
    const size_t row = input.RowAt(i);
    if (cse_cache_) cse_cache_->BeginRecord();
    if (ValueAsBool(predicate_->Eval(input.data->At(row)))) {
      scratch_sel_.push_back(static_cast<uint32_t>(row));
    }
  }
  if (scratch_sel_.size() == n) {
    // Fully selective: the input batch passes through untouched.
    CountOut(input);
    emit(input);
    return Status::OK();
  }
  if (scratch_sel_.empty()) return Status::OK();
  const exec::Batch out = exec::TakePartialSelection(&scratch_sel_, input);
  CountOut(out);
  emit(out);
  return Status::OK();
}

// --- Map ----------------------------------------------------------------------

Result<MapLayout> PlanMapLayout(const Schema& input,
                                std::vector<MapSpec> specs) {
  if (specs.empty()) return Status::InvalidArgument("map without specs");
  // Bind expressions against the *input* schema.
  for (MapSpec& spec : specs) {
    if (!spec.expr) return Status::InvalidArgument("map spec without expr");
    NM_RETURN_NOT_OK(spec.expr->Bind(input));
  }
  // Output schema: input fields (possibly replaced), then new fields in
  // spec order.
  MapLayout layout;
  std::vector<Field> fields = input.fields();
  layout.copy_from.resize(fields.size());
  layout.expr_of.assign(fields.size(), -1);
  for (size_t i = 0; i < fields.size(); ++i) {
    layout.copy_from[i] = static_cast<int>(i);
  }
  for (size_t s = 0; s < specs.size(); ++s) {
    const MapSpec& spec = specs[s];
    bool replaced = false;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name == spec.name) {
        fields[i].type = spec.expr->output_type();
        layout.copy_from[i] = -1;
        layout.expr_of[i] = static_cast<int>(s);
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      fields.push_back({spec.name, spec.expr->output_type()});
      layout.copy_from.push_back(-1);
      layout.expr_of.push_back(static_cast<int>(s));
    }
  }
  NM_ASSIGN_OR_RETURN(layout.output_schema, Schema::Make(std::move(fields)));
  for (MapSpec& spec : specs) layout.exprs.push_back(std::move(spec.expr));
  return layout;
}

Result<OperatorPtr> MapOperator::Make(const Schema& input,
                                      std::vector<MapSpec> specs) {
  auto op = std::unique_ptr<MapOperator>(new MapOperator());
  op->input_schema_ = input;
  // Memoize subtrees repeated within or *across* the computed fields
  // before the layout binds them (PlanMapLayout re-binds the rewritten
  // roots). The cache spans all specs: one record, one epoch.
  std::vector<ExprPtr> roots;
  roots.reserve(specs.size());
  for (MapSpec& spec : specs) roots.push_back(std::move(spec.expr));
  CsePlan cse = PlanCse(std::move(roots));
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].expr = std::move(cse.roots[i]);
  }
  op->cse_cache_ = std::move(cse.cache);
  NM_ASSIGN_OR_RETURN(op->layout_, PlanMapLayout(input, std::move(specs)));
  return OperatorPtr(std::move(op));
}

void MapOperator::WriteRecord(const RecordView& rec, RecordWriter* w) const {
  if (cse_cache_) cse_cache_->BeginRecord();
  const Schema& out_schema = layout_.output_schema;
  for (size_t f = 0; f < out_schema.num_fields(); ++f) {
    if (layout_.copy_from[f] >= 0) {
      const size_t src = static_cast<size_t>(layout_.copy_from[f]);
      switch (out_schema.field(f).type) {
        case DataType::kBool:
          w->SetBool(f, rec.GetBool(src));
          break;
        case DataType::kInt64:
        case DataType::kTimestamp:
          w->SetInt64(f, rec.GetInt64(src));
          break;
        case DataType::kDouble:
          w->SetDouble(f, rec.GetDouble(src));
          break;
        case DataType::kText16:
        case DataType::kText32:
          w->SetText(f, rec.GetText(src));
          break;
      }
      continue;
    }
    const Value v = layout_.exprs[layout_.expr_of[f]]->Eval(rec);
    switch (out_schema.field(f).type) {
      case DataType::kBool:
        w->SetBool(f, ValueAsBool(v));
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
        w->SetInt64(f, ValueAsInt64(v));
        break;
      case DataType::kDouble:
        w->SetDouble(f, ValueAsDouble(v));
        break;
      case DataType::kText16:
      case DataType::kText32:
        w->SetText(f, ValueToString(v));
        break;
    }
  }
}

Status MapOperator::Process(const TupleBufferPtr& input, const EmitFn& emit) {
  CountIn(*input);
  TupleBufferPtr out;  // allocated on the first record only
  for (size_t i = 0; i < input->size(); ++i) {
    const RecordView rec = input->At(i);
    if (!out) {
      out = ctx_->Allocate(layout_.output_schema);
      out->set_watermark(input->watermark());
      out->set_sequence_number(input->sequence_number());
    } else if (out->full()) {
      CountOut(*out);
      emit(out);
      out = ctx_->Allocate(layout_.output_schema);
      out->set_watermark(input->watermark());
      out->set_sequence_number(input->sequence_number());
    }
    RecordWriter w = out->Append();
    WriteRecord(rec, &w);
  }
  if (out) {
    CountOut(*out);
    emit(out);
  }
  return Status::OK();
}

Status MapOperator::ProcessBatch(const exec::Batch& input,
                                 const BatchEmitFn& emit) {
  CountIn(input);
  if (input.NumRows() == 0) return Status::OK();
  // Interpreted map over the selection: computes only surviving rows, no
  // intermediate materialization of the input.
  NM_ASSIGN_OR_RETURN(
      exec::Batch result,
      MaterializeRows(ctx_, layout_.output_schema, input,
                      [this](const RecordView& rec, RecordWriter* w) {
                        WriteRecord(rec, w);
                      }));
  CountOut(result);
  emit(result);
  return Status::OK();
}

// --- Project ------------------------------------------------------------------

Result<OperatorPtr> ProjectOperator::Make(const Schema& input,
                                          std::vector<std::string> names) {
  if (names.empty()) return Status::InvalidArgument("project without fields");
  auto op = std::unique_ptr<ProjectOperator>(new ProjectOperator());
  std::vector<Field> fields;
  for (const std::string& name : names) {
    NM_ASSIGN_OR_RETURN(size_t idx, input.IndexOf(name));
    op->indices_.push_back(idx);
    fields.push_back(input.field(idx));
  }
  NM_ASSIGN_OR_RETURN(op->output_schema_, Schema::Make(std::move(fields)));
  return OperatorPtr(std::move(op));
}

void ProjectOperator::WriteRecord(const RecordView& rec,
                                  RecordWriter* w) const {
  for (size_t f = 0; f < indices_.size(); ++f) {
    const size_t src = indices_[f];
    switch (output_schema_.field(f).type) {
      case DataType::kBool:
        w->SetBool(f, rec.GetBool(src));
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
        w->SetInt64(f, rec.GetInt64(src));
        break;
      case DataType::kDouble:
        w->SetDouble(f, rec.GetDouble(src));
        break;
      case DataType::kText16:
      case DataType::kText32:
        w->SetText(f, rec.GetText(src));
        break;
    }
  }
}

Status ProjectOperator::Process(const TupleBufferPtr& input,
                                const EmitFn& emit) {
  CountIn(*input);
  TupleBufferPtr out;  // allocated on the first record only
  for (size_t i = 0; i < input->size(); ++i) {
    const RecordView rec = input->At(i);
    if (!out) {
      out = ctx_->Allocate(output_schema_);
      out->set_watermark(input->watermark());
      out->set_sequence_number(input->sequence_number());
    } else if (out->full()) {
      CountOut(*out);
      emit(out);
      out = ctx_->Allocate(output_schema_);
      out->set_watermark(input->watermark());
      out->set_sequence_number(input->sequence_number());
    }
    RecordWriter w = out->Append();
    WriteRecord(rec, &w);
  }
  if (out) {
    CountOut(*out);
    emit(out);
  }
  return Status::OK();
}

Status ProjectOperator::ProcessBatch(const exec::Batch& input,
                                     const BatchEmitFn& emit) {
  CountIn(input);
  if (input.NumRows() == 0) return Status::OK();
  NM_ASSIGN_OR_RETURN(
      exec::Batch result,
      MaterializeRows(ctx_, output_schema_, input,
                      [this](const RecordView& rec, RecordWriter* w) {
                        WriteRecord(rec, w);
                      }));
  CountOut(result);
  emit(result);
  return Status::OK();
}

// --- WindowAgg helpers ----------------------------------------------------------

namespace {

// Builds the window-result schema shared by time and threshold windows:
// [key] + window_start + window_end + aggregates + custom fields.
Result<Schema> MakeWindowOutputSchema(
    const Schema& input, const std::string& key_field,
    const std::vector<AggregateSpec>& aggs,
    const std::vector<CustomAggregatorFactory>& customs,
    size_t* custom_first_field) {
  std::vector<Field> fields;
  if (!key_field.empty()) {
    NM_ASSIGN_OR_RETURN(size_t key_idx, input.IndexOf(key_field));
    fields.push_back(input.field(key_idx));
  }
  fields.push_back({"window_start", DataType::kTimestamp});
  fields.push_back({"window_end", DataType::kTimestamp});
  for (const AggregateSpec& spec : aggs) {
    const DataType out_type =
        spec.kind == AggKind::kCount ? DataType::kInt64 : DataType::kDouble;
    fields.push_back({spec.output_name, out_type});
  }
  *custom_first_field = fields.size();
  for (const CustomAggregatorFactory& factory : customs) {
    auto agg = factory();
    NM_RETURN_NOT_OK(agg->Bind(input));
    for (const Field& f : agg->OutputFields()) fields.push_back(f);
  }
  return Schema::Make(std::move(fields));
}

// Resolves aggregate input-field indices (kCount uses the time field).
Result<std::vector<size_t>> ResolveAggFields(
    const Schema& input, const std::vector<AggregateSpec>& aggs,
    size_t time_index) {
  std::vector<size_t> out;
  out.reserve(aggs.size());
  for (const AggregateSpec& spec : aggs) {
    if (spec.kind == AggKind::kCount && spec.field.empty()) {
      out.push_back(time_index);
      continue;
    }
    NM_ASSIGN_OR_RETURN(size_t idx, input.IndexOf(spec.field));
    if (!IsNumeric(input.field(idx).type) &&
        input.field(idx).type != DataType::kBool) {
      return Status::InvalidArgument("aggregate over non-numeric field: " +
                                     spec.field);
    }
    out.push_back(idx);
  }
  return out;
}

void WriteKey(RecordWriter* w, size_t field, DataType type,
              const std::variant<int64_t, std::string>& key) {
  if (std::holds_alternative<int64_t>(key)) {
    w->SetInt64(field, std::get<int64_t>(key));
  } else if (type == DataType::kText16 || type == DataType::kText32) {
    w->SetText(field, std::get<std::string>(key));
  }
}

}  // namespace

// --- WindowAggOperator ------------------------------------------------------------

Result<OperatorPtr> WindowAggOperator::Make(const Schema& input,
                                            WindowAggOptions options) {
  if (std::holds_alternative<ThresholdWindowSpec>(options.window)) {
    return Status::InvalidArgument(
        "use ThresholdWindowOperator for threshold windows");
  }
  auto op = std::unique_ptr<WindowAggOperator>(new WindowAggOperator());
  op->input_schema_ = input;
  NM_ASSIGN_OR_RETURN(op->assigner_, WindowAssigner::Make(options.window));
  op->keyed_ = !options.key_field.empty();
  if (op->keyed_) {
    NM_ASSIGN_OR_RETURN(op->key_index_, input.IndexOf(options.key_field));
    op->key_type_ = input.field(op->key_index_).type;
  }
  if (options.time_field.empty()) {
    return Status::InvalidArgument("window aggregation needs a time field");
  }
  NM_ASSIGN_OR_RETURN(op->time_index_, input.IndexOf(options.time_field));
  NM_ASSIGN_OR_RETURN(
      op->agg_field_index_,
      ResolveAggFields(input, options.aggregates, op->time_index_));
  NM_ASSIGN_OR_RETURN(
      op->output_schema_,
      MakeWindowOutputSchema(input, options.key_field, options.aggregates,
                             options.custom_aggregators,
                             &op->custom_first_field_));
  op->options_ = std::move(options);
  return OperatorPtr(std::move(op));
}

WindowAggOperator::Pane WindowAggOperator::MakePane() const {
  Pane pane;
  pane.states.resize(options_.aggregates.size());
  for (const CustomAggregatorFactory& factory : options_.custom_aggregators) {
    auto agg = factory();
    Status s = agg->Bind(input_schema_);
    assert(s.ok());  // validated in Make
    (void)s;
    pane.customs.push_back(std::move(agg));
  }
  return pane;
}

WindowAggOperator::KeyValue WindowAggOperator::KeyOf(
    const RecordView& rec) const {
  if (!keyed_) return int64_t{0};
  if (key_type_ == DataType::kText16 || key_type_ == DataType::kText32) {
    return rec.GetText(key_index_);
  }
  return rec.GetInt64(key_index_);
}

void WindowAggOperator::WritePane(const PaneKey& key, Pane& pane,
                                  TupleBuffer* out) const {
  RecordWriter w = out->Append();
  size_t f = 0;
  if (keyed_) {
    WriteKey(&w, f, key_type_, key.second);
    ++f;
  }
  w.SetInt64(f++, key.first);
  w.SetInt64(f++, key.first + assigner_.size());
  for (size_t a = 0; a < options_.aggregates.size(); ++a) {
    const double v = pane.states[a].Result(options_.aggregates[a].kind);
    if (options_.aggregates[a].kind == AggKind::kCount) {
      w.SetInt64(f++, static_cast<int64_t>(v));
    } else {
      w.SetDouble(f++, v);
    }
  }
  size_t custom_field = custom_first_field_;
  for (auto& agg : pane.customs) {
    agg->WriteResult(&w, custom_field);
    custom_field += agg->OutputFields().size();
  }
}

Status WindowAggOperator::FireUpTo(Timestamp watermark, const EmitFn& emit) {
  fired_through_ = std::max(fired_through_, watermark);
  TupleBufferPtr out;
  auto it = panes_.begin();
  while (it != panes_.end()) {
    const Timestamp window_end = it->first.first + assigner_.size();
    if (window_end > watermark) {
      // Panes are ordered by window start; later starts may still be open,
      // but all panes with start < watermark - size are closed. Iterate on:
      // only skip, since keys interleave.
      ++it;
      continue;
    }
    if (!out) out = ctx_->Allocate(output_schema_);
    if (out->full()) {
      CountOut(*out);
      emit(out);
      out = ctx_->Allocate(output_schema_);
    }
    WritePane(it->first, it->second, out.get());
    it = panes_.erase(it);
  }
  if (out && !out->empty()) {
    CountOut(*out);
    emit(out);
  }
  return Status::OK();
}

Status WindowAggOperator::DoProcess(const exec::Batch& input,
                                    const EmitFn& emit) {
  CountIn(input);
  uint64_t shed = 0;
  for (size_t i = 0; i < input.NumRows(); ++i) {
    const RecordView rec = input.data->At(input.RowAt(i));
    const Timestamp t = rec.GetInt64(time_index_);
    max_event_time_ = std::max(max_event_time_, t);
    assigner_.AssignWindows(t, &scratch_starts_);
    const KeyValue key = KeyOf(rec);
    bool joined = false;
    for (Timestamp start : scratch_starts_) {
      // Monotonicity guard: a pane whose window already fired must not be
      // resurrected by a late record — that would emit the window twice.
      if (start + assigner_.size() <= fired_through_) continue;
      joined = true;
      auto [it, inserted] = panes_.try_emplace({start, key});
      if (inserted) it->second = MakePane();
      Pane& pane = it->second;
      for (size_t a = 0; a < options_.aggregates.size(); ++a) {
        pane.states[a].Add(rec.GetNumeric(agg_field_index_[a]), t);
      }
      for (auto& agg : pane.customs) agg->Add(rec, t);
    }
    if (!joined) ++shed;
  }
  if (shed > 0) CountShed(shed);
  // Watermark: the max event time seen, minus allowed lateness.
  if (max_event_time_ != std::numeric_limits<Timestamp>::min()) {
    return FireUpTo(max_event_time_ - options_.allowed_lateness, emit);
  }
  return Status::OK();
}

Status WindowAggOperator::Process(const TupleBufferPtr& input,
                                  const EmitFn& emit) {
  return DoProcess(exec::Batch(input), emit);
}

Status WindowAggOperator::ProcessBatch(const exec::Batch& input,
                                       const BatchEmitFn& emit) {
  auto forward = [&emit](const TupleBufferPtr& out) {
    out->Seal();
    emit(exec::Batch(out));
  };
  return DoProcess(input, forward);
}

Status WindowAggOperator::Finish(const EmitFn& emit) {
  return FireUpTo(std::numeric_limits<Timestamp>::max(), emit);
}

// --- ThresholdWindowOperator --------------------------------------------------------

Result<OperatorPtr> ThresholdWindowOperator::Make(
    const Schema& input, ThresholdWindowOptions options) {
  if (!options.predicate) {
    return Status::InvalidArgument("threshold window needs a predicate");
  }
  NM_RETURN_NOT_OK(options.predicate->Bind(input));
  auto op =
      std::unique_ptr<ThresholdWindowOperator>(new ThresholdWindowOperator());
  op->input_schema_ = input;
  op->keyed_ = !options.key_field.empty();
  if (op->keyed_) {
    NM_ASSIGN_OR_RETURN(op->key_index_, input.IndexOf(options.key_field));
    op->key_type_ = input.field(op->key_index_).type;
  }
  if (options.time_field.empty()) {
    return Status::InvalidArgument("threshold window needs a time field");
  }
  NM_ASSIGN_OR_RETURN(op->time_index_, input.IndexOf(options.time_field));
  NM_ASSIGN_OR_RETURN(
      op->agg_field_index_,
      ResolveAggFields(input, options.aggregates, op->time_index_));
  NM_ASSIGN_OR_RETURN(
      op->output_schema_,
      MakeWindowOutputSchema(input, options.key_field, options.aggregates,
                             options.custom_aggregators,
                             &op->custom_first_field_));
  op->options_ = std::move(options);
  return OperatorPtr(std::move(op));
}

ThresholdWindowOperator::OpenWindow ThresholdWindowOperator::MakeWindow(
    Timestamp start) const {
  OpenWindow win;
  win.start = start;
  win.last = start;
  win.states.resize(options_.aggregates.size());
  for (const CustomAggregatorFactory& factory : options_.custom_aggregators) {
    auto agg = factory();
    Status s = agg->Bind(input_schema_);
    assert(s.ok());
    (void)s;
    win.customs.push_back(std::move(agg));
  }
  return win;
}

void ThresholdWindowOperator::CloseInto(const KeyValue& key, OpenWindow& win,
                                        TupleBuffer* out) const {
  RecordWriter w = out->Append();
  size_t f = 0;
  if (keyed_) {
    WriteKey(&w, f, key_type_, key);
    ++f;
  }
  w.SetInt64(f++, win.start);
  w.SetInt64(f++, win.last);
  for (size_t a = 0; a < options_.aggregates.size(); ++a) {
    const double v = win.states[a].Result(options_.aggregates[a].kind);
    if (options_.aggregates[a].kind == AggKind::kCount) {
      w.SetInt64(f++, static_cast<int64_t>(v));
    } else {
      w.SetDouble(f++, v);
    }
  }
  size_t custom_field = custom_first_field_;
  for (auto& agg : win.customs) {
    agg->WriteResult(&w, custom_field);
    custom_field += agg->OutputFields().size();
  }
}

Status ThresholdWindowOperator::DoProcess(const exec::Batch& input,
                                          const EmitFn& emit) {
  CountIn(input);
  TupleBufferPtr out;
  uint64_t shed = 0;
  for (size_t i = 0; i < input.NumRows(); ++i) {
    const RecordView rec = input.data->At(input.RowAt(i));
    const Timestamp t = rec.GetInt64(time_index_);
    KeyValue key = keyed_ ? (key_type_ == DataType::kText16 ||
                                     key_type_ == DataType::kText32
                                 ? KeyValue(rec.GetText(key_index_))
                                 : KeyValue(rec.GetInt64(key_index_)))
                          : KeyValue(int64_t{0});
    const bool holds = ValueAsBool(options_.predicate->Eval(rec));
    auto it = open_.find(key);
    if (holds) {
      // Monotonicity guard: a satisfying record at or before the last
      // closed window of its key belongs to a window already emitted —
      // applying it would resurrect or skew that window, so shed it.
      auto closed = closed_through_.find(key);
      if (closed != closed_through_.end() && t <= closed->second) {
        ++shed;
        continue;
      }
      if (it == open_.end()) {
        it = open_.emplace(std::move(key), MakeWindow(t)).first;
      }
      OpenWindow& win = it->second;
      // Repair mild disorder inside the open window: extend both bounds.
      win.start = std::min(win.start, t);
      win.last = std::max(win.last, t);
      for (size_t a = 0; a < options_.aggregates.size(); ++a) {
        win.states[a].Add(rec.GetNumeric(agg_field_index_[a]), t);
      }
      for (auto& agg : win.customs) agg->Add(rec, t);
    } else if (it != open_.end()) {
      // Close the window; emit when long enough.
      if (it->second.last - it->second.start >= options_.min_duration) {
        if (!out) out = ctx_->Allocate(output_schema_);
        if (out->full()) {
          CountOut(*out);
          emit(out);
          out = ctx_->Allocate(output_schema_);
        }
        CloseInto(it->first, it->second, out.get());
      }
      auto [closed, inserted] =
          closed_through_.try_emplace(it->first, it->second.last);
      if (!inserted) closed->second = std::max(closed->second, it->second.last);
      open_.erase(it);
    }
  }
  if (shed > 0) CountShed(shed);
  if (out && !out->empty()) {
    CountOut(*out);
    emit(out);
  }
  return Status::OK();
}

Status ThresholdWindowOperator::Process(const TupleBufferPtr& input,
                                        const EmitFn& emit) {
  return DoProcess(exec::Batch(input), emit);
}

Status ThresholdWindowOperator::ProcessBatch(const exec::Batch& input,
                                             const BatchEmitFn& emit) {
  auto forward = [&emit](const TupleBufferPtr& out) {
    out->Seal();
    emit(exec::Batch(out));
  };
  return DoProcess(input, forward);
}

Status ThresholdWindowOperator::Finish(const EmitFn& emit) {
  TupleBufferPtr out;
  for (auto& [key, win] : open_) {
    if (win.last - win.start < options_.min_duration) continue;
    if (!out) out = ctx_->Allocate(output_schema_);
    if (out->full()) {
      CountOut(*out);
      emit(out);
      out = ctx_->Allocate(output_schema_);
    }
    CloseInto(key, win, out.get());
  }
  open_.clear();
  if (out && !out->empty()) {
    CountOut(*out);
    emit(out);
  }
  return Status::OK();
}

// --- Network channel pair ---------------------------------------------------

namespace {

// Wire frame layout: [record_count u64][buffer_seq u64][watermark i64]
// [channel_seq u64] then `record_count * record_size` raw record bytes
// (see `kWireFrameHeaderBytes`). Records are fixed-size (text fields
// NUL-padded), so the payload is a straight memcpy of the buffer's record
// region.
std::vector<uint8_t> SerializeFrame(const TupleBuffer& buffer,
                                    uint64_t channel_seq) {
  const size_t payload = buffer.SizeBytes();
  std::vector<uint8_t> frame(kWireFrameHeaderBytes + payload);
  const uint64_t count = buffer.size();
  const uint64_t buffer_seq = buffer.sequence_number();
  const int64_t watermark = buffer.watermark();
  std::memcpy(frame.data(), &count, sizeof(count));
  std::memcpy(frame.data() + 8, &buffer_seq, sizeof(buffer_seq));
  std::memcpy(frame.data() + 16, &watermark, sizeof(watermark));
  std::memcpy(frame.data() + 24, &channel_seq, sizeof(channel_seq));
  if (payload > 0) {
    std::memcpy(frame.data() + kWireFrameHeaderBytes, buffer.At(0).data(),
                payload);
  }
  return frame;
}

}  // namespace

Result<OperatorPtr> NetworkChannelSink::Make(
    const Schema& input, std::shared_ptr<NetworkChannel> channel) {
  if (!channel) {
    return Status::InvalidArgument("network channel sink without channel");
  }
  return OperatorPtr(new NetworkChannelSink(input, std::move(channel)));
}

Status NetworkChannelSink::Process(const TupleBufferPtr& input,
                                   const EmitFn& emit) {
  CountIn(*input);
  std::vector<uint8_t> frame = SerializeFrame(*input, next_seq_);
  const uint64_t wire = frame.size();
  channel_->Send(next_seq_, std::move(frame), input->SizeBytes(),
                 input->size());
  ++next_seq_;
  // Wire-byte accounting (CountOut would count the unserialized buffer).
  stats_.AddOut(input->size(), wire);
  // The emitted buffer only drives the paired NetworkChannelSource, which
  // reads the serialized frame from the channel instead.
  emit(input);
  return Status::OK();
}

Status NetworkChannelSink::Finish(const EmitFn& /*emit*/) {
  // End of stream: nothing more will push frames past the injector's
  // reorder slot or age its delay queue, so release them now. The paired
  // source's Finish runs after this one (chain order) and drains them.
  channel_->FlushFaults();
  return Status::OK();
}

Result<OperatorPtr> NetworkChannelSource::Make(
    const Schema& schema, std::shared_ptr<NetworkChannel> channel) {
  if (!channel) {
    return Status::InvalidArgument("network channel source without channel");
  }
  return OperatorPtr(new NetworkChannelSource(schema, std::move(channel)));
}

Status NetworkChannelSource::StashFrame(std::vector<uint8_t> frame) {
  if (frame.size() < kWireFrameHeaderBytes) {
    return Status::Internal("network frame shorter than its header");
  }
  PendingFrame pending;
  uint64_t channel_seq = 0;
  std::memcpy(&pending.count, frame.data(), sizeof(pending.count));
  std::memcpy(&pending.buffer_seq, frame.data() + 8,
              sizeof(pending.buffer_seq));
  std::memcpy(&pending.watermark, frame.data() + 16,
              sizeof(pending.watermark));
  std::memcpy(&channel_seq, frame.data() + 24, sizeof(channel_seq));
  if (frame.size() !=
      kWireFrameHeaderBytes + pending.count * schema_.record_size()) {
    return Status::Internal(
        "network frame payload does not match its record count");
  }
  stats_.AddIn(pending.count, frame.size());
  // Duplicate suppression: already released, or already waiting.
  if (channel_seq < next_seq_ || pending_.count(channel_seq) > 0) {
    channel_->NoteDuplicateSuppressed();
    return Status::OK();
  }
  pending.frame = std::move(frame);
  pending_.emplace(channel_seq, std::move(pending));
  return Status::OK();
}

Status NetworkChannelSource::EmitFrame(const PendingFrame& pending,
                                       const EmitFn& emit) {
  const size_t record_size = schema_.record_size();
  const uint8_t* payload = pending.frame.data() + kWireFrameHeaderBytes;
  // Clamp the watermark monotonic per channel: reorder repair restores
  // frame order, but a retransmitted or delayed frame may still carry a
  // watermark older than one already emitted.
  const int64_t watermark = std::max(pending.watermark, last_watermark_);
  last_watermark_ = watermark;
  // Reconstruct buffers, splitting when a frame outsizes the pool shape.
  uint64_t emitted = 0;
  do {
    TupleBufferPtr out = ctx_->Allocate(schema_);
    out->set_sequence_number(pending.buffer_seq);
    out->set_watermark(watermark);
    const uint64_t chunk =
        std::min<uint64_t>(pending.count - emitted, out->capacity());
    out->AppendRecords(payload + emitted * record_size, chunk);
    emitted += chunk;
    CountOut(*out);
    emit(out);
  } while (emitted < pending.count);
  return Status::OK();
}

Status NetworkChannelSource::ReleaseReady(const EmitFn& emit) {
  while (!pending_.empty() && pending_.begin()->first == next_seq_) {
    PendingFrame pending = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    NM_RETURN_NOT_OK(EmitFrame(pending, emit));
    channel_->Ack(next_seq_);
    ++next_seq_;
  }
  return Status::OK();
}

Status NetworkChannelSource::Drain(const EmitFn& emit, bool at_end) {
  for (;;) {
    std::vector<uint8_t> frame;
    while (channel_->Receive(&frame)) {
      NM_RETURN_NOT_OK(StashFrame(std::move(frame)));
    }
    NM_RETURN_NOT_OK(ReleaseReady(emit));
    // After releasing the in-sequence prefix, anything still pending sits
    // behind a gap at next_seq_. Repair it when the buffer overflows its
    // bound, or at end-of-stream when the sender's tail never arrived.
    const RetryOptions& retry = channel_->retry_options();
    const bool overflow = pending_.size() > retry.reorder_capacity;
    const bool tail_missing = at_end && next_seq_ < channel_->seq_end();
    if (!overflow && !tail_missing) return Status::OK();
    Status repair = channel_->RequestRetransmit(next_seq_);
    if (repair.ok()) continue;  // re-sent; the next Receive round has it
    // Unrecoverable gap: degrade by policy.
    if (retry.shed_policy == ShedPolicy::kBlock) {
      return Status(repair.code(), "network channel " +
                                       channel_->EndpointsString() +
                                       ": " + repair.message());
    }
    channel_->NoteFrameLost(1);
    ++next_seq_;  // skip the gap; frames behind it release next round
  }
}

Status NetworkChannelSource::Process(const TupleBufferPtr& input,
                                     const EmitFn& emit) {
  (void)input;  // scheduling hand-off only; data arrives via the channel
  return Drain(emit, /*at_end=*/false);
}

Status NetworkChannelSource::Finish(const EmitFn& emit) {
  // Frames flushed by upstream Finish calls (including the paired sink's
  // fault flush) land here; recover any missing tail before reporting
  // end-of-stream.
  return Drain(emit, /*at_end=*/true);
}

// --- Sinks -------------------------------------------------------------------

Status SinkOperator::Process(const TupleBufferPtr& input, const EmitFn&) {
  const exec::Batch batch(input);
  CountIn(batch);
  return Consume(batch);
}

Status SinkOperator::ProcessBatch(const exec::Batch& input,
                                  const BatchEmitFn&) {
  CountIn(input);
  return Consume(input);
}

std::vector<std::vector<Value>> CollectSink::Rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_;
}

size_t CollectSink::RowCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

Status CollectSink::Consume(const exec::Batch& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < batch.NumRows(); ++i) {
    if (rows_.size() >= max_rows_) {
      return Status::ResourceExhausted("collect sink row cap reached");
    }
    const RecordView rec = batch.data->At(batch.RowAt(i));
    std::vector<Value> row;
    row.reserve(schema_.num_fields());
    for (size_t f = 0; f < schema_.num_fields(); ++f) {
      switch (schema_.field(f).type) {
        case DataType::kBool:
          row.emplace_back(rec.GetBool(f));
          break;
        case DataType::kInt64:
        case DataType::kTimestamp:
          row.emplace_back(rec.GetInt64(f));
          break;
        case DataType::kDouble:
          row.emplace_back(rec.GetDouble(f));
          break;
        case DataType::kText16:
        case DataType::kText32:
          row.emplace_back(rec.GetText(f));
          break;
      }
    }
    rows_.push_back(std::move(row));
  }
  return Status::OK();
}

Status CountingSink::Consume(const exec::Batch& batch) {
  events_.fetch_add(batch.NumRows());
  bytes_.fetch_add(batch.SizeBytes());
  return Status::OK();
}

Result<std::shared_ptr<CsvSink>> CsvSink::Open(Schema schema,
                                               const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open csv sink file: " + path);
  }
  // Header line.
  std::string header;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) header += ',';
    header += schema.field(i).name;
  }
  header += '\n';
  std::fputs(header.c_str(), f);
  return std::shared_ptr<CsvSink>(new CsvSink(std::move(schema), f));
}

CsvSink::~CsvSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CsvSink::Consume(const exec::Batch& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string line;
  for (size_t i = 0; i < batch.NumRows(); ++i) {
    const RecordView rec = batch.data->At(batch.RowAt(i));
    line.clear();
    for (size_t f = 0; f < schema_.num_fields(); ++f) {
      if (f > 0) line += ',';
      switch (schema_.field(f).type) {
        case DataType::kBool:
          line += rec.GetBool(f) ? "true" : "false";
          break;
        case DataType::kInt64:
        case DataType::kTimestamp:
          line += std::to_string(rec.GetInt64(f));
          break;
        case DataType::kDouble:
          line += FormatDouble(rec.GetDouble(f));
          break;
        case DataType::kText16:
        case DataType::kText32:
          line += rec.GetText(f);
          break;
      }
    }
    line += '\n';
    std::fputs(line.c_str(), file_);
  }
  return Status::OK();
}

}  // namespace nebulameos::nebula

/// \file buffer_manager.hpp
/// \brief Pooled tuple-buffer allocation.
///
/// A `BufferManager` owns a bounded pool of same-shaped `TupleBuffer`s.
/// `Acquire` blocks when the pool is exhausted (natural backpressure for
/// sources on memory-constrained edge nodes); `TryAcquire` does not.
/// Returned handles recycle the buffer into the pool on destruction.

#pragma once

#include <atomic>

#include "common/mutex.hpp"
#include "nebula/tuple_buffer.hpp"

namespace nebulameos::nebula {

/// \brief Bounded pool of tuple buffers for one schema.
class BufferManager : public std::enable_shared_from_this<BufferManager> {
 public:
  /// Creates a pool of \p pool_size buffers, each holding
  /// \p tuples_per_buffer records of \p schema.
  static std::shared_ptr<BufferManager> Create(Schema schema,
                                               size_t tuples_per_buffer,
                                               size_t pool_size);

  /// Blocks until a buffer is available, then returns it (empty, reset).
  TupleBufferPtr Acquire() NM_EXCLUDES(mutex_);

  /// Returns a buffer if one is immediately available, else nullptr.
  TupleBufferPtr TryAcquire() NM_EXCLUDES(mutex_);

  /// Buffers currently available in the pool.
  size_t available() const NM_EXCLUDES(mutex_);

  /// Total `Acquire`/`TryAcquire` hand-outs over the pool's lifetime —
  /// the pool-accounting counter behind the zero-copy fan-out tests: a
  /// branch hand-off must not draw new buffers, so this must not scale
  /// with branch count. Atomic: workers acquire concurrently while the
  /// engine snapshots `QueryStats::buffers_acquired` mid-run.
  uint64_t total_acquired() const {
    return total_acquired_.load(std::memory_order_relaxed);
  }

  /// Total buffers owned by the pool.
  size_t pool_size() const { return pool_size_; }

  /// The schema buffers are shaped for.
  const Schema& schema() const { return schema_; }

 private:
  BufferManager(Schema schema, size_t tuples_per_buffer, size_t pool_size);

  TupleBufferPtr Wrap(std::unique_ptr<TupleBuffer> buf);
  void Recycle(std::unique_ptr<TupleBuffer> buf) NM_EXCLUDES(mutex_);

  Schema schema_;
  size_t tuples_per_buffer_;
  size_t pool_size_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::vector<std::unique_ptr<TupleBuffer>> free_ NM_GUARDED_BY(mutex_);
  std::atomic<uint64_t> total_acquired_{0};
};

}  // namespace nebulameos::nebula

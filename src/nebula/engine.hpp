/// \file engine.hpp
/// \brief The node engine: compiles logical queries and executes them.
///
/// Each submitted query compiles into one fused pipeline tree (source →
/// operator chain → sink, or → fan-out → branch pipelines). Execution is
/// pull-based: the query's worker thread fills a buffer from the source,
/// seals it, and pushes it through the chain as a *batch* (buffer +
/// selection vector, exec/batch.hpp) without intermediate queueing —
/// NebulaStream's pipeline model. At a fan-out the shared prefix executes
/// *once* per buffer and every branch receives the *same* sealed batch
/// (zero-copy; selection vectors keep branch filtering independent), so
/// several sinks (alerting + archival) ride one ingest without the
/// hand-off copies the engine used to pay per branch.
/// An optional *pipelined* mode decouples source and processing onto two
/// threads with a bounded hand-off queue (backpressure). Multiple queries
/// run concurrently on their own threads.
///
/// With `EngineOptions::worker_threads > 1` execution is *morsel-driven*
/// (docs/ARCHITECTURE.md "Threading model"): a fixed worker pool pulls
/// (dispatch-target, sealed-batch) morsels from per-target strands — each
/// fan-out branch runs concurrently per ingested buffer, and a qualifying
/// keyed stateful suffix is compiled once per worker and fed by hashing
/// the key into per-partition selection vectors, so every clone owns
/// disjoint state and per-key results match sequential execution.
///
/// The engine tracks per-query statistics — events/bytes ingested and
/// emitted, wall-clock time, derived e/s and MB/s, per-operator flow keyed
/// by DAG path and per-sink emitted counts — which the benchmark harness
/// reports against the paper's Table T1 numbers.

#pragma once

#include <atomic>
#include <thread>

#include "common/mutex.hpp"
#include "nebula/metrics/metrics.hpp"
#include "nebula/optimizer.hpp"
#include "nebula/query.hpp"

namespace nebulameos::nebula {

/// \brief Flow counters of one terminal sink, keyed by its DAG path ("" on
/// a linear plan, "0"/"1"/... for fan-out branches, "1.0" nested).
struct SinkStats {
  std::string path;
  std::string name;
  uint64_t events_emitted = 0;
  uint64_t bytes_emitted = 0;
};

/// \brief Post-run (or in-flight) statistics of one query.
struct QueryStats {
  uint64_t events_ingested = 0;
  uint64_t bytes_ingested = 0;
  /// Summed over every sink of the plan.
  uint64_t events_emitted = 0;
  uint64_t bytes_emitted = 0;
  int64_t elapsed_micros = 0;
  /// Pooled buffers drawn across every schema pool of the query — the
  /// allocation-accounting number: zero-copy fan-out means this does not
  /// scale with branch count, and selection-vector filtering means
  /// filters draw nothing at all.
  uint64_t buffers_acquired = 0;
  /// Morsel tasks shed at saturated strand queues under a degradation
  /// shed policy (always 0 under the default `ShedPolicy::kBlock`).
  uint64_t tasks_shed = 0;

  /// Ingested events per second of wall-clock run time.
  double EventsPerSecond() const {
    return elapsed_micros <= 0
               ? 0.0
               : static_cast<double>(events_ingested) /
                     (static_cast<double>(elapsed_micros) / 1e6);
  }

  /// Ingested megabytes (10^6 bytes) per second of wall-clock run time.
  double MegabytesPerSecond() const {
    return elapsed_micros <= 0
               ? 0.0
               : static_cast<double>(bytes_ingested) / 1e6 /
                     (static_cast<double>(elapsed_micros) / 1e6);
  }

  /// Per-operator flow counters in pipeline (depth-first) order. The key
  /// is the operator name prefixed by its DAG path — plain "Filter" in the
  /// shared prefix or a linear plan, "0/WindowAgg" inside branch 0 — so
  /// shared-prefix work is distinguishable from per-branch work.
  std::vector<std::pair<std::string, OperatorStats>> operator_stats;

  /// Per-sink emitted counts in DAG-path order (one entry on linear plans).
  std::vector<SinkStats> sink_stats;
};

/// \brief Engine configuration.
struct EngineOptions {
  size_t tuples_per_buffer = 1024;  ///< records per buffer
  size_t pool_size = 128;           ///< buffers per schema pool
  bool pipelined = false;           ///< source and pipeline on two threads
  size_t queue_capacity = 8;        ///< hand-off queue depth (pipelined)
  /// Workers in the morsel-driven pool. 1 executes every query on its own
  /// single thread (the historical behavior); N > 1 runs fan-out branches
  /// concurrently and hash-partitions qualifying keyed stateful suffixes
  /// N ways. 0 (the default) resolves from the `NM_WORKER_THREADS`
  /// environment variable, else 1 — the toggle the TSan CI job uses to
  /// force every existing test through the concurrent path unchanged.
  size_t worker_threads = 0;
  /// Logical-plan rewrite configuration; `optimizer.enable = false`
  /// submits plans verbatim (A/B benchmarking, debugging).
  OptimizerOptions optimizer;
  /// Lower Filter→Map→Project runs to fused batch kernels at compile time
  /// (`CompileOptions::compiled_kernels`). False forces the interpreted
  /// `Expression::Eval` path everywhere — the A/B switch the benches use
  /// to quantify the compiled-kernel win. Expressions the compiler
  /// refuses fall back to the interpreter either way.
  bool compiled_kernels = true;
  /// Simulated topology for placed plans (non-owning; must outlive the
  /// engine). When set, submitted plans carrying placement annotations
  /// lower their node transitions to network-channel operator pairs and
  /// `Deployment` reports the traffic those channels measured. When null
  /// (the default), placement annotations are ignored and every plan
  /// executes single-node.
  const Topology* topology = nullptr;
  /// Always-on observability (docs/ARCHITECTURE.md "Observability"): each
  /// query owns a `metrics::MetricsRegistry` with per-operator latency and
  /// batch-size histograms, per-channel wire counters, per-strand queue
  /// depth/task-wait instruments and engine-level flow counters, read via
  /// `NodeEngine::Metrics`. The record path is relaxed-atomic and cheap
  /// (the bench gate holds measured overhead under 5%); false disables
  /// every instrument for exact A/B comparisons.
  bool metrics_enabled = true;
  /// When > 0, each running query starts a sampler thread firing at this
  /// interval: every tick derives windowed ingest/emit throughput gauges
  /// (`engine.ingest_events_per_sec` / `engine.emit_events_per_sec`) and
  /// bumps `engine.metric_samples`, so a live snapshot carries *current*
  /// rates. 0 (the default) records no rates and starts no thread.
  Duration metrics_interval = 0;
  /// Fault tolerance (docs/ARCHITECTURE.md "Fault model & recovery"):
  /// `faults.profile` is injected on every lowered network channel
  /// (combined with the per-link `TopologyLink::fault` profiles along its
  /// route), `faults.retry` configures each channel pair's retransmit
  /// queue, backoff and reorder-repair buffer. The `NM_FAULT_PROFILE`
  /// environment variable, when set and parseable, overrides
  /// `faults.profile` at engine construction — the CI fault-injection
  /// gate's whole-suite switch.
  FaultToleranceOptions faults = {};
};

/// \brief `Explain` renderings of a submitted query's plan, captured at
/// submission (the plan itself is consumed by compilation).
struct QueryPlanText {
  std::string logical;    ///< as submitted, pre-optimization
  std::string optimized;  ///< after the rewrite pipeline
};

/// \brief Compiles, runs and tracks queries on one (simulated) node.
class NodeEngine {
 public:
  explicit NodeEngine(EngineOptions options = {});
  ~NodeEngine();

  NodeEngine(const NodeEngine&) = delete;
  NodeEngine& operator=(const NodeEngine&) = delete;

  /// Validates, optimizes (per `EngineOptions::optimizer`) and compiles a
  /// plan; returns its query id. The plan must have a source and a sink on
  /// every root-to-leaf path. Plans carrying placement annotations are
  /// submitted verbatim — placement is computed against a specific
  /// (already-optimized) plan shape, so the rewriter never runs over a
  /// placed plan.
  Result<int> Submit(LogicalPlan plan);

  /// Convenience: builds the fluent query and submits the emitted plan.
  Result<int> Submit(Query query);

  // --- Shared-query serving (serving/shared_query_manager.hpp) ---
  //
  // A *shared host* is a query whose plan is a sink-less linear operator
  // prefix: the source and prefix execute once per buffer, and any number
  // of *dynamic branches* — operator suffixes ending in a sink — attach
  // below it, each receiving the same sealed output batch (the zero-copy
  // fan-out contract, extended to branches that appear and disappear at
  // runtime). The serving layer merges structurally prefix-equal client
  // queries onto one host; these engine hooks are the mechanism.

  /// Submits a shared host. \p prefix_plan must be linear (no fan-out) and
  /// carry no sink; it is compiled verbatim (the serving manager
  /// pre-optimizes — rewriting here could change the shape branch suffixes
  /// were matched against) and never partition-parallelized (branches own
  /// the stateful tails). When \p delivery_node names a topology node
  /// different from the prefix's last placed node, the shared stream is
  /// shipped there once over a single network channel — every attached
  /// branch then consumes node-local data, which is what makes the fleet
  /// uplink cost independent of the number of branch queries.
  Result<int> SubmitShared(LogicalPlan prefix_plan,
                           int delivery_node = LogicalOperator::kUnplaced);

  /// Attaches \p suffix_ops (a linear chain ending in a `SinkNode`) as a
  /// new dynamic branch of shared host \p host_id and returns the branch
  /// id. Valid before `Start` and *while the host runs* — runtime
  /// admission: the branch starts consuming from the next dispatched
  /// buffer boundary, with its own strand (actor-serialized state) and its
  /// own metrics under the `b<id>/` DAG path.
  Result<int> AttachBranch(int host_id,
                           std::vector<LogicalOperatorPtr> suffix_ops);

  /// Detaches one dynamic branch: it stops receiving batches at the next
  /// buffer boundary and its queued in-flight tasks drain harmlessly (the
  /// branch's operator state outlives the detach until the last queued
  /// task released it). The host keeps running for the remaining branches;
  /// cancelling the host when the *last* branch leaves is the serving
  /// layer's job.
  Status DetachBranch(int host_id, int branch_id);

  /// Per-branch statistics: the host's shared ingest counters plus the
  /// branch's own operator and sink flow — the view a client of the
  /// serving layer sees for its virtual query.
  Result<QueryStats> BranchStats(int host_id, int branch_id) const;

  /// Health of one dynamic branch: OK while the branch is attached (or
  /// was detached cleanly), or the failure that force-detached it — a
  /// branch whose own operators error is detached by the engine with a
  /// descriptive `Status` while its siblings and the shared ingest keep
  /// running (fault isolation). `NotFound` for ids never attached.
  Status BranchStatus(int host_id, int branch_id) const;

  /// Starts the query's worker thread(s).
  Status Start(int query_id);

  /// Blocks until the query's source is exhausted and the pipeline flushed.
  Status Wait(int query_id);

  /// Requests cooperative cancellation (the source loop stops at the next
  /// buffer boundary), then waits.
  Status Cancel(int query_id);

  /// Convenience: Start + Wait.
  Status RunToCompletion(int query_id);

  /// Statistics snapshot (valid after Wait/Cancel; in-flight reads see the
  /// latest completed buffer counts).
  Result<QueryStats> Stats(int query_id) const;

  /// Point-in-time value copy of the query's metrics registry — safe to
  /// call while the query runs on any number of workers (instrument reads
  /// are relaxed-atomic; the snapshot owns plain values). Fails with
  /// `FailedPrecondition` when the engine was built with
  /// `metrics_enabled = false`. Metric names are identical across worker
  /// counts: operators key by DAG path (fused kernel stages under their
  /// original chained names), strand instruments by dispatch-target path
  /// (partition clones share their segment's path and its instruments).
  Result<metrics::MetricsSnapshot> Metrics(int query_id) const;

  /// The query's plan renderings (pre- and post-optimization), captured at
  /// submission — plan introspection for tests, demos and debugging.
  Result<QueryPlanText> Explain(int query_id) const;

  /// The deployment report *measured* from the query's network-channel
  /// traffic (valid after Wait; in-flight reads see the traffic so far).
  /// A query compiled without placement (or without a topology) has no
  /// channels and reports zero traffic — the whole pipeline ran on one
  /// node. Replaces the post-hoc `SimulateDeployment` pricing for placed
  /// plans.
  Result<DeploymentReport> Deployment(int query_id) const;

  /// Number of registered queries.
  size_t NumQueries() const;

 private:
  struct RunningQuery;

  void RunLoop(RunningQuery* rq);
  void SourceLoop(RunningQuery* rq);

  EngineOptions options_;
  size_t worker_threads_ = 1;  ///< resolved from options/env at construction
  mutable nebulameos::Mutex mutex_;
  std::map<int, std::unique_ptr<RunningQuery>> queries_ NM_GUARDED_BY(mutex_);
  int next_id_ NM_GUARDED_BY(mutex_) = 1;
};

}  // namespace nebulameos::nebula

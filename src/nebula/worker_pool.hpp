/// \file worker_pool.hpp
/// \brief The morsel-driven worker pool behind multi-core query execution.
///
/// A `WorkerPool` owns a fixed set of worker threads pulling tasks from
/// *strands* — FIFO task queues with the actor guarantee that at most one
/// worker runs a given strand's tasks at any moment, in post order. The
/// engine gives every dispatch target of a compiled pipeline tree (each
/// fan-out branch, each key partition of a stateful operator) its own
/// strand, so a stateful operator instance is only ever touched by one
/// task at a time and per-strand buffer order is preserved, while distinct
/// strands run concurrently across the pool.
///
/// Posts from outside the pool (the ingest thread) block while the target
/// strand holds `strand_capacity` queued tasks — the bounded morsel queue
/// that backpressures ingest against slow operators. Posts *from worker
/// threads* (a branch task fanning out to key partitions) never block:
/// a worker that blocked on a full queue could deadlock the pool, and the
/// memory these posts pin is already bounded by the buffer pools backing
/// the batches they carry.
///
/// Graceful degradation: a `ShedPolicy` other than the default `kBlock`
/// turns saturation into load shedding instead of backpressure —
/// `kDropOldest` evicts the oldest queued morsel of the full strand,
/// `kDropLate` refuses the incoming one. Shed morsels are counted
/// (`tasks_shed`), never silently lost from the accounting.
///
/// The locking discipline (one pool mutex guarding every strand's queue)
/// is machine-checked: the CI clang build runs `-Wthread-safety` over the
/// `NM_GUARDED_BY`/`NM_REQUIRES` annotations below.

#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "nebula/fault.hpp"

namespace nebulameos::nebula {

/// \brief Fixed pool of worker threads executing strand-serialized tasks.
class WorkerPool {
 public:
  /// \brief One FIFO task queue: tasks run in post order, never
  /// concurrently with each other, on whichever worker picks the strand
  /// up. Created via `WorkerPool::MakeStrand`; must not outlive the pool.
  class Strand {
   public:
    Strand(const Strand&) = delete;
    Strand& operator=(const Strand&) = delete;

    /// Enqueues \p task. Blocks while the strand is at capacity, unless
    /// the caller is itself a pool worker (worker posts never block).
    /// Tasks posted after the pool started shutting down are dropped.
    void Post(std::function<void()> task);

   private:
    friend class WorkerPool;
    explicit Strand(WorkerPool* pool) : pool_(pool) {}

    WorkerPool* pool_;
    std::deque<std::function<void()>> tasks_ NM_GUARDED_BY(pool_->mutex_);
    /// Queued in ready_ or running on a worker.
    bool scheduled_ NM_GUARDED_BY(pool_->mutex_) = false;
  };

  /// Spawns \p workers threads. \p strand_capacity bounds each strand's
  /// queued (not yet started) tasks for non-worker posters; 0 = unbounded.
  /// \p shed_policy decides what a non-worker post does at the bound:
  /// block until capacity frees (default), or shed a morsel (see file
  /// comment). Worker posts always enqueue regardless.
  explicit WorkerPool(size_t workers, size_t strand_capacity = 0,
                      ShedPolicy shed_policy = ShedPolicy::kBlock);

  /// Runs every remaining task to completion, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Creates a new strand bound to this pool.
  std::unique_ptr<Strand> MakeStrand();

  /// Blocks until every posted task (including tasks posted by tasks)
  /// has finished executing and released its captures.
  void Drain() NM_EXCLUDES(mutex_);

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  size_t num_workers() const { return threads_.size(); }

  /// Morsels shed at saturated strand queues (0 under `kBlock`).
  uint64_t tasks_shed() const {
    return tasks_shed_.load(std::memory_order_relaxed);
  }

 private:
  void Post(Strand* strand, std::function<void()> task) NM_EXCLUDES(mutex_);
  void WorkerMain() NM_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar ready_cv_;    // workers: a strand became ready
  CondVar space_cv_;    // bounded posters: capacity freed
  CondVar drained_cv_;  // Drain: pending_ hit zero
  /// Strands with queued tasks, FIFO.
  std::deque<Strand*> ready_ NM_GUARDED_BY(mutex_);
  /// Posted tasks not yet completed.
  size_t pending_ NM_GUARDED_BY(mutex_) = 0;
  size_t strand_capacity_;
  ShedPolicy shed_policy_;
  std::atomic<uint64_t> tasks_shed_{0};
  bool stop_ NM_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;  // immutable after construction
};

}  // namespace nebulameos::nebula

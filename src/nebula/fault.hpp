/// \file fault.hpp
/// \brief Deterministic network-fault injection and the fault-tolerance
/// policy knobs shared by channels, operators, and the engine.
///
/// The placed deployments of the NebulaStream model run over simulated
/// `NetworkChannel`s; real IoT links drop, duplicate, reorder, delay and
/// disconnect. A `FaultProfile` describes those behaviours as seeded
/// per-frame probabilities, a `FaultInjector` draws frame fates from a
/// deterministic PRNG stream (every run with the same seed injects the
/// same fault sequence — CI can gate on exact outcomes), and
/// `RetryOptions` configures the recovery machinery that keeps delivery
/// exactly-once under those faults: a bounded sender-side retransmit
/// queue with exponential backoff, and a bounded receiver-side reorder
/// repair buffer (operators.hpp `NetworkChannelSource`).
///
/// Profiles resolve with the precedence env > engine option > per-link:
/// `NM_FAULT_PROFILE="drop=0.01,reorder=0.005,seed=7"` overrides
/// `EngineOptions::faults.profile`, which combines with the
/// `TopologyLink::fault` profiles along a channel's route.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/random.hpp"
#include "common/status.hpp"

namespace nebulameos::nebula {

/// \brief Per-frame fault rates of one link or channel. All rates are
/// independent per-frame probabilities in [0, 1]; a frame suffers at most
/// one fate per send (drawn in drop > duplicate > reorder > delay order).
struct FaultProfile {
  double drop_rate = 0.0;       ///< frame vanishes in transit
  double duplicate_rate = 0.0;  ///< frame arrives twice
  double reorder_rate = 0.0;    ///< frame swaps with the next one sent
  double delay_rate = 0.0;      ///< frame held back a few sends
  /// Hard disconnect after this many frames (0 = never): the channel dies,
  /// in-flight and retained frames are lost, later sends are dropped.
  uint64_t disconnect_after_frames = 0;
  uint64_t seed = 0x5eedfau;  ///< PRNG seed; same seed ⇒ same fault stream

  /// True when any fault behaviour is configured.
  bool Any() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0 ||
           delay_rate > 0.0 || disconnect_after_frames > 0;
  }
};

/// Parses `"drop=0.01,dup=0.002,reorder=0.005,delay=0.01,`
/// `disconnect_after=100,seed=42"` (any subset, any order). Unknown keys
/// and rates outside [0, 1] fail with `InvalidArgument`.
Result<FaultProfile> ParseFaultProfile(const std::string& spec);

/// The `NM_FAULT_PROFILE` environment profile, when set and parseable.
/// The CI fault-injection gate uses this to run the whole suite lossy
/// without touching any test. An unparseable value returns nullopt.
std::optional<FaultProfile> EnvFaultProfile();

/// Combines two profiles as independent fault sources: each rate becomes
/// `1 - (1-a)(1-b)`, the disconnect threshold is the smaller non-zero one,
/// and the seed mixes both so distinct combinations draw distinct streams.
FaultProfile CombineFaultProfiles(const FaultProfile& a,
                                  const FaultProfile& b);

/// \brief What to do when a bounded fault-tolerance queue saturates or a
/// frame proves unrecoverable.
enum class ShedPolicy {
  kBlock,       ///< never shed: saturation degrades to a hard error
  kDropOldest,  ///< evict the oldest queued entry / skip the oldest gap
  kDropLate,    ///< refuse the newest entry / late arrival
};

const char* ToString(ShedPolicy policy);

/// \brief Channel health, surfaced through `DeploymentReport` and metrics.
enum class HealthState {
  kHealthy,       ///< no faults observed
  kDegraded,      ///< faults observed but repaired or shed by policy
  kDisconnected,  ///< the channel is permanently dead
};

const char* ToString(HealthState state);

/// \brief Recovery configuration of one channel pair (sender retransmit
/// queue + receiver reorder-repair buffer).
struct RetryOptions {
  /// Sender-side frames retained for retransmission until acknowledged.
  /// Saturation applies `shed_policy`; a shed frame that later turns out
  /// to be needed is data loss.
  size_t retain_limit = 256;
  /// Retransmission attempts per frame before giving up
  /// (`ResourceExhausted`).
  uint32_t max_attempts = 8;
  /// Exponential backoff per attempt: `base * 2^(attempt-1)`, capped, plus
  /// seeded jitter — modelled as simulated transfer seconds, so lossy
  /// deployments price their recovery latency deterministically.
  double backoff_base_seconds = 0.05;
  double backoff_cap_seconds = 2.0;
  /// Fraction of the backoff randomized (±jitter/2, seeded).
  double jitter = 0.5;
  /// Receiver-side reorder-repair buffer capacity in frames; a gap older
  /// than this buffer triggers retransmission (the deterministic stand-in
  /// for a retransmit timeout).
  size_t reorder_capacity = 64;
  /// Applied when the retain queue saturates or a frame is unrecoverable:
  /// `kBlock` fails the branch, the drop policies skip the frame and
  /// count it shed.
  ShedPolicy shed_policy = ShedPolicy::kBlock;
};

/// \brief Engine-level fault-tolerance configuration: one profile injected
/// on every lowered channel plus the recovery knobs.
struct FaultToleranceOptions {
  FaultProfile profile;
  RetryOptions retry;
};

/// \brief Draws per-frame fates from a seeded deterministic stream.
///
/// Owned by a `NetworkChannel` and driven under the channel lock, so the
/// fate sequence depends only on the profile seed and the (strand-ordered)
/// send sequence — identical across worker counts.
class FaultInjector {
 public:
  enum class Fate { kDeliver, kDrop, kDuplicate, kReorder, kDelay };

  explicit FaultInjector(const FaultProfile& profile)
      : profile_(profile), rng_(profile.seed) {}

  const FaultProfile& profile() const { return profile_; }

  /// Fate of the next frame sent.
  Fate NextFate() {
    // One uniform draw per frame keeps the stream length independent of
    // which rates are configured (stable replay when tuning one rate).
    const double u = rng_.Uniform();
    double edge = profile_.drop_rate;
    if (u < edge) return Fate::kDrop;
    edge += profile_.duplicate_rate;
    if (u < edge) return Fate::kDuplicate;
    edge += profile_.reorder_rate;
    if (u < edge) return Fate::kReorder;
    edge += profile_.delay_rate;
    if (u < edge) return Fate::kDelay;
    return Fate::kDeliver;
  }

  /// True once \p frames_sent reached the configured disconnect point.
  bool ShouldDisconnect(uint64_t frames_sent) const {
    return profile_.disconnect_after_frames > 0 &&
           frames_sent >= profile_.disconnect_after_frames;
  }

  /// How many subsequent sends a delayed frame is held back (1..3).
  uint64_t DelaySends() { return 1 + rng_.UniformInt(3); }

  /// Seeded uniform in [0, 1) for backoff jitter.
  double JitterDraw() { return rng_.Uniform(); }

 private:
  FaultProfile profile_;
  Rng rng_;
};

}  // namespace nebulameos::nebula

/// \file export_visualization.cpp
/// \brief Figure 2 data exporter: fleet trajectories and geofences as
/// GeoJSON for a Deck.gl-style map (the paper visualizes the same data with
/// Deck.gl fed over Kafka).
///
/// Run: `example_export_visualization [events] [out.geojson]`
/// (defaults: 120000 events, ./sncb_fleet.geojson). The output is a
/// FeatureCollection: one LineString per train (with per-vertex epoch
/// timestamps, Deck.gl TripsLayer convention) plus one Polygon per
/// geofence.

#include <cstdio>

#include "meos/io.hpp"
#include "queries/queries.hpp"

using namespace nebulameos;        // NOLINT
using namespace nebulameos::sncb;  // NOLINT

int main(int argc, char** argv) {
  uint64_t events = 120'000;
  std::string path = "sncb_fleet.geojson";
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) path = argv[2];

  auto env = queries::DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  const RailNetwork& network = (*env)->network();
  FleetConfig config;
  FleetSimulator sim(&network, config);

  // Collect per-train trajectories (subsampled per train).
  std::vector<std::vector<meos::TInstant<meos::Point>>> tracks(
      config.num_trains);
  std::vector<uint64_t> counts(config.num_trains, 0);
  for (uint64_t i = 0; i < events; ++i) {
    const TrainEvent ev = sim.Next();
    if (counts[ev.train_id]++ % 8 == 0) {
      tracks[ev.train_id].push_back({meos::Point{ev.lon, ev.lat}, ev.ts});
    }
  }

  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"type\":\"FeatureCollection\",\"features\":[\n");
  bool first = true;
  // Train trajectories.
  for (int t = 0; t < config.num_trains; ++t) {
    auto seq = meos::TGeomPointSeq::Make(std::move(tracks[t]));
    if (!seq.ok()) continue;
    if (!first) std::fprintf(f, ",\n");
    first = false;
    std::fprintf(f, "%s",
                 meos::TPointToGeoJson(*seq, "train-" + std::to_string(t))
                     .c_str());
  }
  // Geofence polygons (stations/workshops as their bounding boxes).
  for (const auto& zone : (*env)->geofences()->zones()) {
    if (!first) std::fprintf(f, ",\n");
    first = false;
    const meos::GeoBox box = zone.BoundingBox();
    std::fprintf(
        f,
        "{\"type\":\"Feature\",\"id\":\"%s\",\"properties\":{\"kind\":\"%s\"},"
        "\"geometry\":{\"type\":\"Polygon\",\"coordinates\":[[[%f,%f],[%f,%f],"
        "[%f,%f],[%f,%f],[%f,%f]]]}}",
        zone.name.c_str(), integration::ZoneKindName(zone.kind), box.xmin,
        box.ymin, box.xmax, box.ymin, box.xmax, box.ymax, box.xmin, box.ymax,
        box.xmin, box.ymin);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);

  std::printf("wrote %s: %d train trajectories + %zu geofences from %llu "
              "events\n",
              path.c_str(), config.num_trains,
              (*env)->geofences()->zones().size(),
              static_cast<unsigned long long>(events));
  std::printf("render with any GeoJSON viewer (Deck.gl, geojson.io, kepler"
              ".gl) to reproduce Figure 2.\n");
  return 0;
}

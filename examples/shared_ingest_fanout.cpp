/// \file shared_ingest_fanout.cpp
/// \brief Multi-sink DAG plans: one SNCB ingest serving two workloads.
///
/// The paper's deployment story is a single train-telemetry stream feeding
/// several concurrent mobility workloads on one constrained edge node.
/// This example submits ONE plan whose shared geofencing ingest fans out
/// to (branch 0) a Q1-style geofence-alert sink and (branch 1) a Q2-style
/// windowed noise aggregate for archival, prints the DAG `Explain`
/// rendering, and proves from the engine's statistics that the shared
/// prefix executed once — the combined plan ingests one stream's worth of
/// events where two independent submissions would ingest it twice.

#include <cstdio>

#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::queries;  // NOLINT

int main() {
  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }

  QueryOptions options;
  options.max_events = 100'000;
  options.sink = SinkMode::kCollect;

  // 1. One DAG plan: shared ingest -> FanOut -> {alerts, archive}.
  auto built = BuildSharedIngestFanOut(**env, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }

  nebula::NodeEngine engine;
  auto id = engine.Submit(std::move(built->plan));
  if (!id.ok()) {
    std::fprintf(stderr, "submit: %s\n", id.status().ToString().c_str());
    return 1;
  }

  // 2. The DAG rendering: shared prefix annotated, one subtree per branch.
  if (auto text = engine.Explain(*id); text.ok()) {
    std::printf("submitted plan:\n%s\noptimized plan:\n%s\n",
                text->logical.c_str(), text->optimized.c_str());
  }

  if (Status st = engine.RunToCompletion(*id); !st.ok()) {
    std::fprintf(stderr, "run: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Per-sink results from one ingest.
  const auto& alerts = built->collects[0];
  const auto& archive = built->collects[1];
  std::printf("branch 0 (geofence alerts):   %zu rows\n", alerts->RowCount());
  std::printf("branch 1 (noise archive):     %zu rows\n", archive->RowCount());

  // 4. The fan-out win, from the engine's own counters: ingested events
  //    equal ONE stream's worth, and the per-operator stats are keyed by
  //    DAG path ("" = shared prefix, "0/..." and "1/..." = branches).
  auto stats = engine.Stats(*id);
  if (!stats.ok()) return 1;
  std::printf("\ningested %llu events for %zu sinks (%.0f e/s)\n",
              static_cast<unsigned long long>(stats->events_ingested),
              stats->sink_stats.size(), stats->EventsPerSecond());
  std::printf("%-28s %12s %12s\n", "operator (by DAG path)", "events_in",
              "events_out");
  for (const auto& [name, op] : stats->operator_stats) {
    std::printf("%-28s %12llu %12llu\n", name.c_str(),
                static_cast<unsigned long long>(op.events_in),
                static_cast<unsigned long long>(op.events_out));
  }
  for (const auto& sink : stats->sink_stats) {
    std::printf("sink[%s] %s emitted %llu events\n", sink.path.c_str(),
                sink.name.c_str(),
                static_cast<unsigned long long>(sink.events_emitted));
  }
  return 0;
}

/// \file topk_nearest_trains.cpp
/// \brief The paper's future-work feature, implemented: "aggregation
/// functions that can work with elements within the stream to answer
/// queries such as identifying the top-k nearest trains" (§4).
///
/// Streams fleet positions through the `TopKNearestOperator`: per 2-minute
/// window it assembles each train's trajectory and ranks the other trains
/// by exact nearest-approach distance (minimum of the relative motion, not
/// a snapshot distance).
///
/// Run: `example_topk_nearest_trains [events]` (default 200000).

#include <cstdio>
#include <map>

#include "nebulameos/topk_nearest.hpp"
#include "sncb/records.hpp"

using namespace nebulameos;               // NOLINT
using namespace nebulameos::integration;  // NOLINT
using namespace nebulameos::nebula;       // NOLINT

int main(int argc, char** argv) {
  uint64_t events = 200'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);

  const sncb::RailNetwork network = sncb::BuildBelgianNetwork();
  sncb::SncbSources sources(&network);

  TopKNearestOptions options;
  options.k = 2;
  options.window = Minutes(2);
  options.key_field = "train_id";
  options.time_field = "ts";

  auto op = TopKNearestOperator::Make(sncb::PositionSchema(), options);
  if (!op.ok()) {
    std::fprintf(stderr, "operator: %s\n", op.status().ToString().c_str());
    return 1;
  }
  ExecutionContext ctx;
  (void)(*op)->Open(&ctx);

  // Drive the operator directly from the fleet position stream and print
  // the last fired window per train.
  std::map<int64_t, std::vector<std::string>> latest;
  Timestamp last_window = 0;
  auto collect = [&](const TupleBufferPtr& out) {
    for (size_t i = 0; i < out->size(); ++i) {
      const RecordView rec = out->At(i);
      if (rec.GetInt64(1) != last_window) {
        last_window = rec.GetInt64(1);
        latest.clear();
      }
      char line[128];
      std::snprintf(line, sizeof(line), "#%lld train %lld at %.1f km",
                    static_cast<long long>(rec.GetInt64(3)),
                    static_cast<long long>(rec.GetInt64(4)),
                    rec.GetDouble(5) / 1000.0);
      latest[rec.GetInt64(0)].push_back(line);
    }
  };

  auto source = sources.Position(events);
  uint64_t windows_seen = 0;
  while (true) {
    auto buf = std::make_shared<TupleBuffer>(sncb::PositionSchema(), 4096);
    auto more = source->Fill(buf.get());
    if (!more.ok()) {
      std::fprintf(stderr, "source: %s\n", more.status().ToString().c_str());
      return 1;
    }
    if (!buf->empty()) {
      const Timestamp before = last_window;
      (void)(*op)->Process(buf, collect);
      if (last_window != before) ++windows_seen;
    }
    if (!*more) break;
  }
  (void)(*op)->Finish(collect);

  std::printf("top-%zu nearest trains, final %s window (of %llu events):\n\n",
              options.k, "2-minute",
              static_cast<unsigned long long>(events));
  for (const auto& [train, neighbors] : latest) {
    std::printf("  train %lld:", static_cast<long long>(train));
    for (const auto& line : neighbors) std::printf("  %s", line.c_str());
    std::printf("\n");
  }
  std::printf("\n(distances are exact nearest-approach distances between "
              "the moving trains within the window)\n");
  return 0;
}

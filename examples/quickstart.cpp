/// \file quickstart.cpp
/// \brief Smallest end-to-end NebulaMEOS program.
///
/// Builds a toy position stream, registers the MEOS plugin, runs a query
/// that keeps only events inside a spatiotemporal box near Brussels
/// (`tpoint_at_stbox`) and within 5 km of a workshop (`edwithin`), and
/// prints the surviving rows.

#include <cstdio>

#include "nebula/engine.hpp"
#include "nebulameos/plugin.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT

int main() {
  // 1. A geofence catalog with one workshop POI, installed as the active
  //    catalog, and the MEOS plugin registered.
  auto geofences = std::make_shared<integration::GeofenceRegistry>();
  geofences->AddPoi("workshop:Schaarbeek", "workshop",
                    meos::Point{4.3780, 50.8790});
  Status st = integration::RegisterMeosPlugin(geofences);
  if (!st.ok()) {
    std::fprintf(stderr, "plugin registration failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  // 2. A generator source: one object moving east through Brussels,
  //    one position every second.
  Schema schema = Schema::Build()
                      .AddInt64("id")
                      .AddTimestamp("ts")
                      .AddDouble("lon")
                      .AddDouble("lat")
                      .Finish();
  const Timestamp t0 = MakeTimestamp(2023, 6, 1, 12, 0, 0);
  auto tick = std::make_shared<int64_t>(0);
  auto source = std::make_unique<GeneratorSource>(
      schema,
      [tick, t0](RecordWriter* w) {
        const int64_t i = (*tick)++;
        w->SetInt64(0, 1);
        w->SetInt64(1, t0 + i * kMicrosPerSecond);
        w->SetDouble(2, 4.25 + 0.002 * static_cast<double>(i));  // heading east
        w->SetDouble(3, 50.85);
        return true;
      },
      /*max_events=*/120, "ts");

  // 3. The query: restrict to an STBox around central Brussels during the
  //    first minute, then require proximity to the workshop.
  auto box = meos::STBox::Make(4.30, 50.80, 4.42, 50.90,
                               meos::Period(t0, t0 + Minutes(1)));
  auto sink = std::make_shared<CollectSink>(schema);
  auto plan =
      Query::From(std::move(source))
          .Filter(integration::MeosAtStboxExpression::FromBox(
              Attribute("lon"), Attribute("lat"), Attribute("ts"), *box))
          .Filter(Fn("edwithin", {Attribute("lon"), Attribute("lat"),
                                  Lit(std::string("workshop:Schaarbeek")),
                                  Lit(5000.0)}))
          .To(sink)
          .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // 4. Run it (the engine validates, optimizes — here fusing the two
  //    filters into one — and lowers the plan).
  NodeEngine engine;
  auto id = engine.Submit(std::move(*plan));
  if (!id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 id.status().ToString().c_str());
    return 1;
  }
  if (auto text = engine.Explain(*id); text.ok()) {
    std::printf("logical plan:\n%soptimized plan:\n%s",
                text->logical.c_str(), text->optimized.c_str());
  }
  st = engine.RunToCompletion(*id);
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 5. Inspect results.
  const auto rows = sink->Rows();
  std::printf("quickstart: %zu events inside the box and near the workshop\n",
              rows.size());
  for (size_t i = 0; i < rows.size(); i += 10) {
    std::printf("  id=%lld  ts=%s  lon=%.4f lat=%.4f\n",
                static_cast<long long>(ValueAsInt64(rows[i][0])),
                FormatTimestamp(ValueAsInt64(rows[i][1])).c_str(),
                ValueAsDouble(rows[i][2]), ValueAsDouble(rows[i][3]));
  }
  const auto stats = engine.Stats(*id);
  if (stats.ok()) {
    std::printf("ingested %llu events, emitted %llu, %.0f e/s\n",
                static_cast<unsigned long long>(stats->events_ingested),
                static_cast<unsigned long long>(stats->events_emitted),
                stats->EventsPerSecond());
  }
  return 0;
}

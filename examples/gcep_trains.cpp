/// \file gcep_trains.cpp
/// \brief The paper's §3.2 demonstration: the four geospatial
/// complex-event-processing queries — battery health, passenger overload,
/// unscheduled stops and brake degradation.
///
/// Run: `example_gcep_trains [events]` (default 400000).

#include <cstdio>

#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT
using namespace nebulameos::queries;  // NOLINT

int main(int argc, char** argv) {
  uint64_t events = 400'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);

  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  QueryOptions options;
  options.max_events = events;
  options.sink = SinkMode::kCollect;

  std::printf("NebulaMEOS GCEP demo — %llu events from 6 trains\n",
              static_cast<unsigned long long>(events));
  std::printf("(train 2 has a degrading battery; train 4 degrading "
              "brakes)\n\n");

  // Q5: battery-curve deviation windows with nearest-workshop annotation.
  {
    auto built = BuildQ5BatteryMonitoring(**env, options);
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    (void)engine.RunToCompletion(*id);
    const auto rows = built->collect->Rows();
    std::printf("Q5 battery monitoring: %zu deviation alerts\n", rows.size());
    for (size_t i = 0; i < rows.size() && i < 3; ++i) {
      const auto& r = rows[i];
      std::printf("    train %lld deviated %.2f V avg for %llds; nearest "
                  "workshop %.1f km\n",
                  static_cast<long long>(ValueAsInt64(r[0])),
                  ValueAsDouble(r[3]),
                  static_cast<long long>(
                      (ValueAsInt64(r[2]) - ValueAsInt64(r[1])) /
                      kMicrosPerSecond),
                  ValueAsDouble(r[10]) / 1000.0);
    }
  }
  // Q6: heavy passenger load.
  {
    auto built = BuildQ6HeavyLoad(**env, options);
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    (void)engine.RunToCompletion(*id);
    const auto rows = built->collect->Rows();
    std::printf("\nQ6 heavy passenger load: %zu overload windows "
                "(extra train suggested)\n",
                rows.size());
    for (size_t i = 0; i < rows.size() && i < 3; ++i) {
      const auto& r = rows[i];
      std::printf("    train %lld averaged %.0f passengers (seats %.0f) in "
                  "the 5 min before %s\n",
                  static_cast<long long>(ValueAsInt64(r[0])),
                  ValueAsDouble(r[3]), ValueAsDouble(r[5]),
                  FormatTimestamp(ValueAsInt64(r[2])).c_str());
    }
  }
  // Q7: unscheduled stops (probability raised for a short demo stream).
  {
    QueryOptions stop_options = options;
    stop_options.fleet.unscheduled_stop_prob = 4e-4;
    auto built = BuildQ7UnscheduledStops(**env, stop_options);
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    (void)engine.RunToCompletion(*id);
    const auto rows = built->collect->Rows();
    std::printf("\nQ7 unscheduled stops: %zu flagged\n", rows.size());
    for (size_t i = 0; i < rows.size() && i < 3; ++i) {
      const auto& r = rows[i];
      std::printf("    train %lld halted %lld readings at (%.4f, %.4f) — "
                  "outside any station/workshop\n",
                  static_cast<long long>(ValueAsInt64(r[0])),
                  static_cast<long long>(ValueAsInt64(r[3])),
                  ValueAsDouble(r[4]), ValueAsDouble(r[5]));
    }
  }
  // Q8: repeated emergency braking.
  {
    auto built = BuildQ8BrakeMonitoring(**env, options);
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    (void)engine.RunToCompletion(*id);
    const auto rows = built->collect->Rows();
    std::printf("\nQ8 brake monitoring: %zu repeated-emergency alerts\n",
                rows.size());
    for (size_t i = 0; i < rows.size() && i < 3; ++i) {
      const auto& r = rows[i];
      std::printf("    train %lld: two emergencies within %llds (pressure "
                  "floor %.1f bar) near (%.4f, %.4f)\n",
                  static_cast<long long>(ValueAsInt64(r[0])),
                  static_cast<long long>(
                      (ValueAsInt64(r[2]) - ValueAsInt64(r[1])) /
                      kMicrosPerSecond),
                  std::min(ValueAsDouble(r[3]), ValueAsDouble(r[4])),
                  ValueAsDouble(r[5]), ValueAsDouble(r[6]));
    }
  }
  return 0;
}

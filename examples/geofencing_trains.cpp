/// \file geofencing_trains.cpp
/// \brief The paper's §3.1 demonstration: the four geofencing queries over
/// the live SNCB fleet stream, with sample alerts printed as the stream
/// flows.
///
/// Run: `example_geofencing_trains [events]` (default 150000).

#include <cstdio>

#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT
using namespace nebulameos::queries;  // NOLINT

namespace {

void PrintSample(const std::vector<std::vector<Value>>& rows, size_t n,
                 const std::function<std::string(const std::vector<Value>&)>&
                     format) {
  const size_t step = rows.size() <= n ? 1 : rows.size() / n;
  for (size_t i = 0; i < rows.size(); i += step) {
    std::printf("    %s\n", format(rows[i]).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 150'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);

  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  QueryOptions options;
  options.max_events = events;
  options.sink = SinkMode::kCollect;

  std::printf("NebulaMEOS geofencing demo — %llu events from 6 trains\n\n",
              static_cast<unsigned long long>(events));

  // Q1: alerts that survive the maintenance-zone filter.
  {
    auto built = BuildQ1AlertFiltering(**env, options);
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    (void)engine.RunToCompletion(*id);
    const auto rows = built->collect->Rows();
    std::printf("Q1 location-based alert filtering: %zu alerts kept\n",
                rows.size());
    PrintSample(rows, 3, [](const std::vector<Value>& r) {
      return "train " + ValueToString(r[0]) + " @ " +
             FormatTimestamp(ValueAsInt64(r[1])) + "  (" +
             ValueToString(r[2]) + ", " + ValueToString(r[3]) + ")  " +
             ValueToString(r[5]);
    });
  }
  // Q2: noise statistics per noise-sensitive zone.
  {
    auto built = BuildQ2NoiseMonitoring(**env, options);
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    (void)engine.RunToCompletion(*id);
    const auto rows = built->collect->Rows();
    std::printf("\nQ2 noise monitoring: %zu 30s zone-windows\n", rows.size());
    PrintSample(rows, 3, [&](const std::vector<Value>& r) {
      const auto* zone = (*env)->geofences()->FindZone(ValueAsInt64(r[0]));
      return std::string(zone ? zone->name : "?") + "  avg " +
             ValueToString(r[3]) + " dB, max " + ValueToString(r[4]) +
             " dB over " + ValueToString(r[5]) + " readings";
    });
  }
  // Q3: dynamic speed-limit violations.
  {
    auto built = BuildQ3DynamicSpeedLimit(**env, options);
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    (void)engine.RunToCompletion(*id);
    const auto rows = built->collect->Rows();
    std::printf("\nQ3 dynamic speed limit: %zu violations\n", rows.size());
    PrintSample(rows, 3, [](const std::vector<Value>& r) {
      return "train " + ValueToString(r[0]) + "  " + ValueToString(r[4]) +
             " km/h in a " + ValueToString(r[5]) + " km/h zone";
    });
  }
  // Q4: weather-conditioned advisories.
  {
    auto built = BuildQ4WeatherSpeedZones(**env, options);
    NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    (void)engine.RunToCompletion(*id);
    const auto rows = built->collect->Rows();
    std::printf("\nQ4 weather-based speed zones: %zu advisories\n",
                rows.size());
    PrintSample(rows, 3, [](const std::vector<Value>& r) {
      static const char* kNames[] = {"clear", "rain", "heavy_rain", "snow",
                                     "fog"};
      const int64_t c = ValueAsInt64(r[6]);
      return "train " + ValueToString(r[0]) + "  " + ValueToString(r[4]) +
             " km/h, advised " + ValueToString(r[5]) + " km/h (" +
             std::string(kNames[c % 5]) + ")";
    });
  }
  return 0;
}

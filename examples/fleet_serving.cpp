/// \file fleet_serving.cpp
/// \brief Fleet serving walkthrough: two trains each submit two queries
/// over the same named position stream. A `SharedQueryManager` merges each
/// train's pair onto one shared ingest host (the common `Filter` executes
/// once per buffer, the uplink ships once), and a coordinator `MergeNode`
/// unions the per-branch alert streams into one deterministically ordered
/// output.
///
/// Doubles as the CI smoke check: exits non-zero unless the manager
/// reports a 2:1 sharing ratio and the merge releases the expected rows.

#include <cstdio>

#include "nebula/serving/fleet.hpp"
#include "nebula/serving/merge.hpp"

using namespace nebulameos;                   // NOLINT
using namespace nebulameos::nebula;           // NOLINT
using namespace nebulameos::nebula::serving;  // NOLINT

namespace {

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("train")
      .AddTimestamp("ts")
      .AddDouble("speed")
      .Finish();
}

std::unique_ptr<MemorySource> PositionStream(int train, size_t rows) {
  std::vector<std::vector<Value>> data;
  for (size_t i = 0; i < rows; ++i) {
    data.push_back({Value{static_cast<int64_t>(train)},
                    Value{Seconds(static_cast<int64_t>(i))},
                    Value{static_cast<double>((i * 7) % 120)}});
  }
  auto src = std::make_unique<MemorySource>(EventSchema(), std::move(data),
                                            /*rounds=*/1, "ts");
  src->SetLogicalName("positions");
  return src;
}

}  // namespace

int main() {
  constexpr int kTrains = 2;
  constexpr size_t kRows = 64;

  FleetDeployment fleet(FleetOptions{kTrains});
  NodeEngine engine(fleet.MakeEngineOptions());
  SharedQueryManager manager(&engine);
  MergeNode merge(EventSchema(), "ts");

  // Per train: an archive query (speed > 30) and an alert query layering a
  // tighter threshold on the SAME prefix — the manager proves the prefixes
  // structurally equal and runs the shared filter once per buffer.
  std::vector<int> vids;
  for (int train = 0; train < kTrains; ++train) {
    for (int k = 0; k < 2; ++k) {
      Query q = Query::From(PositionStream(train, kRows))
                    .Filter(Gt(Attribute("speed"), Lit(30.0)));
      auto plan =
          k == 0 ? std::move(q).To(merge.InputFor(train * 2 + k)).Build()
                 : std::move(q)
                       .Filter(Gt(Attribute("speed"), Lit(100.0)))
                       .To(merge.InputFor(train * 2 + k))
                       .Build();
      if (!plan.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     plan.status().message().c_str());
        return 1;
      }
      auto vid = fleet.SubmitTrainQuery(&manager, train, std::move(*plan));
      if (!vid.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     vid.status().message().c_str());
        return 1;
      }
      vids.push_back(*vid);
    }
  }

  std::printf("clients: %zu   hosted plans: %zu   (sharing ratio %.1f:1)\n",
              manager.NumClientQueries(), manager.NumHostedPlans(),
              static_cast<double>(manager.NumClientQueries()) /
                  static_cast<double>(manager.NumHostedPlans()));

  for (int vid : vids) {
    if (Status st = manager.Start(vid); !st.ok()) {
      std::fprintf(stderr, "start failed: %s\n", st.message().c_str());
      return 1;
    }
  }
  for (int vid : vids) {
    if (Status st = manager.Wait(vid); !st.ok()) {
      std::fprintf(stderr, "wait failed: %s\n", st.message().c_str());
      return 1;
    }
  }
  merge.CloseAllInputs();

  // Every branch sees the whole host's uplink traffic — shipped once.
  for (int vid : vids) {
    auto report = manager.Deployment(vid);
    if (!report.ok()) continue;
    std::printf("vid %d: wire bytes %llu (uplink %llu)\n", vid,
                static_cast<unsigned long long>(report->wire_bytes),
                static_cast<unsigned long long>(report->uplink_bytes));
  }

  const auto rows = merge.Rows();
  std::printf("merged rows: %zu (ordered by ts, stream, seq)\n", rows.size());
  for (size_t i = 0; i < rows.size() && i < 6; ++i) {
    const auto& row = rows[i];
    std::printf("  ts=%lds stream=%d train=%ld speed=%.0f\n",
                static_cast<long>(row.ts / kMicrosPerSecond), row.stream_id,
                static_cast<long>(std::get<int64_t>(row.values[0])),
                std::get<double>(row.values[2]));
  }

  const bool shared_2_to_1 = manager.NumClientQueries() == 4 &&
                             manager.NumHostedPlans() == 2;
  if (!shared_2_to_1 || rows.empty()) {
    std::fprintf(stderr, "fleet serving smoke failed\n");
    return 1;
  }
  std::printf("fleet serving: OK\n");
  return 0;
}

/// \file metrics_observability.cpp
/// \brief Observability walkthrough: run a query with the rate sampler
/// enabled, then read the per-operator / per-strand / engine instruments
/// out of a `MetricsSnapshot` and dump both export formats.
///
/// Also doubles as the CI smoke check (`scripts/check.sh` runs it and
/// greps the JSON): exits non-zero unless the snapshot carries a
/// populated ingest counter, at least one operator latency histogram and
/// a queue-depth gauge.

#include <cstdio>

#include "nebula/engine.hpp"

using namespace nebulameos;          // NOLINT
using namespace nebulameos::nebula;  // NOLINT

int main() {
  // A generator stream of noisy sensor readings, filtered and rescaled —
  // enough operators that the per-operator histograms have shape.
  Schema schema = Schema::Build()
                      .AddInt64("id")
                      .AddTimestamp("ts")
                      .AddDouble("reading")
                      .Finish();
  auto tick = std::make_shared<int64_t>(0);
  auto source = std::make_unique<GeneratorSource>(
      schema,
      [tick](RecordWriter* w) {
        const int64_t i = (*tick)++;
        w->SetInt64(0, i % 16);
        w->SetInt64(1, i * kMicrosPerSecond);
        w->SetDouble(2, static_cast<double>(i % 100));
        return true;
      },
      /*max_events=*/50'000, "ts");

  auto sink = std::make_shared<CollectSink>(Schema::Build()
                                                .AddInt64("id")
                                                .AddTimestamp("ts")
                                                .AddDouble("reading")
                                                .AddDouble("scaled")
                                                .Finish());
  auto plan = Query::From(std::move(source))
                  .Filter(Gt(Attribute("reading"), Lit(25.0)))
                  .Map("scaled", Mul(Attribute("reading"), Lit(1.5)))
                  .To(sink)
                  .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // metrics_interval turns on the per-query sampler thread that publishes
  // windowed engine.{ingest,emit}_events_per_sec gauges. Collection of
  // counters/histograms is on by default regardless.
  EngineOptions options;
  options.metrics_interval = Millis(20);
  NodeEngine engine(options);
  auto id = engine.Submit(std::move(*plan));
  if (!id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 id.status().ToString().c_str());
    return 1;
  }
  if (Status st = engine.RunToCompletion(*id); !st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto snap = engine.Metrics(*id);
  if (!snap.ok()) {
    std::fprintf(stderr, "metrics failed: %s\n",
                 snap.status().ToString().c_str());
    return 1;
  }

  // Smoke assertions: a completed query must have ingested events, timed
  // at least one operator, and registered its strand gauge. check.sh
  // relies on a non-zero exit here.
  const auto ingested = snap->counters.find("engine.events_ingested");
  if (ingested == snap->counters.end() || ingested->second == 0) {
    std::fprintf(stderr, "SMOKE FAIL: engine.events_ingested missing/zero\n");
    return 1;
  }
  bool timed_op = false;
  for (const auto& [name, hist] : snap->histograms) {
    if (name.rfind("op.", 0) == 0 && hist.count > 0) timed_op = true;
  }
  if (!timed_op) {
    std::fprintf(stderr, "SMOKE FAIL: no populated op.* histogram\n");
    return 1;
  }
  bool has_strand_gauge = false;
  for (const auto& [name, value] : snap->gauges) {
    (void)value;
    if (name.rfind("worker.strand.", 0) == 0) has_strand_gauge = true;
  }
  if (!has_strand_gauge) {
    std::fprintf(stderr, "SMOKE FAIL: no worker.strand.* gauge\n");
    return 1;
  }
  if (snap->counters.at("engine.metric_samples") == 0) {
    std::fprintf(stderr, "SMOKE FAIL: sampler never ticked\n");
    return 1;
  }

  std::printf("rows surviving the filter: %zu\n\n", sink->Rows().size());
  std::printf("--- snapshot as JSON ---\n%s\n", snap->ToJson().c_str());
  std::printf("--- snapshot as Prometheus text ---\n%s",
              snap->ToPrometheusText().c_str());
  return 0;
}

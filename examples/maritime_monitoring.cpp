/// \file maritime_monitoring.cpp
/// \brief A second IoT domain from the paper's motivation: maritime
/// traffic management.
///
/// Shows that nothing in the library is rail-specific: an AIS-like vessel
/// stream (synthetic, seeded) monitored with the same public API —
/// geofenced port approach zones, a speed-restriction expression inside
/// the anchorage, and a threshold window that flags loitering (sustained
/// near-zero speed outside the anchorage, the maritime analogue of Q7).
///
/// Run: `example_maritime_monitoring [events]` (default 120000).

#include <cstdio>

#include "common/random.hpp"
#include "nebula/engine.hpp"
#include "nebulameos/plugin.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT

int main(int argc, char** argv) {
  uint64_t events = 120'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);

  // Port of Antwerp-ish geofences: approach channel (polygon), anchorage
  // (circle), harbour office POI.
  auto geofences = std::make_shared<integration::GeofenceRegistry>();
  auto channel = meos::Polygon::Make(
      {{3.9, 51.32}, {4.15, 51.32}, {4.25, 51.24}, {4.0, 51.22}});
  if (!channel.ok()) return 1;
  geofences->AddPolygonZone("approach-channel",
                            integration::ZoneKind::kHighRisk, *channel,
                            /*speed_limit_kmh=*/22.0);  // ~12 knots
  geofences->AddCircleZone("anchorage", integration::ZoneKind::kStation,
                           meos::Circle{{3.85, 51.35}, 3000.0});
  geofences->AddPoi("harbour-office", "workshop", {4.40, 51.23});
  Status st = integration::RegisterMeosPlugin(geofences);
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return 1;
  integration::SetActiveGeofences(geofences);

  // Synthetic AIS stream: 12 vessels heading for the port at 8-16 knots,
  // some drifting (loitering) outside the anchorage.
  Schema schema = Schema::Build()
                      .AddInt64("mmsi")
                      .AddTimestamp("ts")
                      .AddDouble("lon")
                      .AddDouble("lat")
                      .AddDouble("speed_kn")
                      .Finish();
  struct Vessel {
    double lon, lat, heading, speed_kn;
    bool loitering;
  };
  auto rng = std::make_shared<Rng>(2026);
  auto vessels = std::make_shared<std::vector<Vessel>>();
  for (int i = 0; i < 12; ++i) {
    vessels->push_back({3.5 + rng->Uniform(0.0, 0.3),
                        51.25 + rng->Uniform(0.0, 0.15),
                        rng->Uniform(0.0, 0.4), 8.0 + rng->Uniform(0.0, 8.0),
                        i % 5 == 0});  // every 5th vessel drifts
  }
  const Timestamp t0 = MakeTimestamp(2023, 6, 1, 6, 0, 0);
  auto tick = std::make_shared<uint64_t>(0);
  auto source = std::make_unique<GeneratorSource>(
      schema,
      [rng, vessels, tick, t0](RecordWriter* w) {
        const uint64_t i = (*tick)++;
        const size_t v = i % vessels->size();
        Vessel& vessel = (*vessels)[v];
        const double dt = 2.0;  // seconds between a vessel's reports
        if (vessel.loitering) {
          vessel.speed_kn = rng->Uniform(0.0, 0.3);  // adrift, engines off
        } else {
          vessel.speed_kn = std::clamp(
              vessel.speed_kn + rng->Normal() * 0.3, 0.5, 16.0);
        }
        const double meters = vessel.speed_kn * 0.5144 * dt;
        vessel.lon += std::cos(vessel.heading) * meters / 70000.0;
        vessel.lat += std::sin(vessel.heading) * meters / 111320.0;
        w->SetInt64(0, 200'000'000 + static_cast<int64_t>(v));
        w->SetInt64(1, t0 + static_cast<Timestamp>(i / vessels->size()) *
                              Seconds(2));
        w->SetDouble(2, vessel.lon);
        w->SetDouble(3, vessel.lat);
        w->SetDouble(4, vessel.speed_kn);
        return true;
      },
      events, "ts");

  // Query: flag vessels loitering (speed < 0.5 kn sustained >= 3 min)
  // outside the anchorage — then annotate the distance to the harbour
  // office for dispatch.
  auto loitering =
      And(Lt(Attribute("speed_kn"), Lit(0.5)),
          Not(Fn("in_zone", {Attribute("lon"), Attribute("lat"),
                             Lit(std::string("anchorage"))})));
  auto plan = Query::From(std::move(source))
                  .KeyBy("mmsi")
                  .ThresholdWindow(loitering, Minutes(3), "ts")
                  .Aggregate({AggregateSpec::Avg("lon", "lon"),
                              AggregateSpec::Avg("lat", "lat"),
                              AggregateSpec::Count("reports")})
                  .Map("office_dist_m",
                       Fn("nearest_poi_distance",
                          {Attribute("lon"), Attribute("lat"),
                           Lit(std::string("workshop"))}))
                  .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "build: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto out = plan->OutputSchema();
  if (!out.ok()) {
    std::fprintf(stderr, "compile: %s\n", out.status().ToString().c_str());
    return 1;
  }
  auto sink = std::make_shared<CollectSink>(*out);
  plan->SetSink(sink);

  NodeEngine engine;
  auto id = engine.Submit(std::move(*plan));
  if (!id.ok() || !engine.RunToCompletion(*id).ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  const auto rows = sink->Rows();
  std::printf("maritime monitoring: %zu loitering alerts from %llu AIS "
              "reports\n",
              rows.size(), static_cast<unsigned long long>(events));
  for (size_t i = 0; i < rows.size() && i < 5; ++i) {
    const auto& r = rows[i];
    std::printf("  vessel %lld adrift %llds at (%.3f, %.3f), harbour office "
                "%.1f km away\n",
                static_cast<long long>(ValueAsInt64(r[0])),
                static_cast<long long>(
                    (ValueAsInt64(r[2]) - ValueAsInt64(r[1])) /
                    kMicrosPerSecond),
                ValueAsDouble(r[3]), ValueAsDouble(r[4]),
                ValueAsDouble(r[6]) / 1000.0);
  }
  return 0;
}

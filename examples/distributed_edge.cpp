/// \file distributed_edge.cpp
/// \brief Figure 1 as a runnable program: the fleet topology, operator
/// placement on the train's edge device, and the uplink traffic the
/// placement saves — *executed* over serializing network channels, not
/// priced after the fact.
///
/// Run: `example_distributed_edge [events]` (default 200000).

#include <cstdio>

#include "nebula/topology.hpp"
#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT
using namespace nebulameos::queries;  // NOLINT

int main(int argc, char** argv) {
  uint64_t events = 200'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);

  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }

  // The reference deployment: a coordinator and a cloud worker in the data
  // center, six Intel-Atom-class edge workers aboard the trains, cellular
  // uplinks (1 MB/s, 60 ms).
  const Topology topo = Topology::SncbReference(6, 1e6, Millis(60));
  std::printf("topology:\n");
  for (const auto& node : topo.nodes()) {
    const char* kind = node.kind == NodeKind::kCoordinator ? "coordinator"
                       : node.kind == NodeKind::kCloudWorker ? "cloud-worker"
                                                             : "edge-worker";
    std::printf("  node %d  %-14s %s (cpu x%.1f)\n", node.id, kind,
                node.name.c_str(), node.cpu_factor);
  }
  std::printf("  %zu links (cellular uplinks: 1.0 MB/s, 60 ms)\n\n",
              topo.links().size());

  // Run Q1 once (unplaced) to show real per-operator flow, then *execute*
  // the two placements: every node transition lowers to a network-channel
  // pair that serializes buffers across the simulated uplink.
  QueryOptions options;
  options.max_events = events;
  options.sink = SinkMode::kCounting;
  auto built = BuildQ1AlertFiltering(**env, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  EngineOptions engine_options;
  engine_options.topology = &topo;
  NodeEngine engine(engine_options);
  auto id = engine.Submit(std::move(built->plan));
  if (!id.ok() || !engine.RunToCompletion(*id).ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  auto stats = engine.Stats(*id);
  std::printf("query: Q1 alert filtering over %llu events (%.1f MB raw)\n",
              static_cast<unsigned long long>(stats->events_ingested),
              static_cast<double>(stats->bytes_ingested) / 1e6);
  std::printf("operator flow:\n");
  std::printf("  %-14s %12s %12s %12s\n", "operator", "events in",
              "events out", "selectivity");
  for (const auto& [name, op] : stats->operator_stats) {
    std::printf("  %-14s %12llu %12llu %11.4f%%\n", name.c_str(),
                static_cast<unsigned long long>(op.events_in),
                static_cast<unsigned long long>(op.events_out),
                op.Selectivity() * 100.0);
  }

  std::printf("\nplacement comparison (train-0 -> cloud uplink, measured "
              "from channel traffic):\n");
  DeploymentReport reports[2];
  const char* labels[2] = {"ship raw to cloud", "edge pushdown"};
  for (int variant = 0; variant < 2; ++variant) {
    auto placed = BuildQ1AlertFiltering(**env, options);
    if (!placed.ok()) {
      std::fprintf(stderr, "build: %s\n",
                   placed.status().ToString().c_str());
      return 1;
    }
    if (variant == 0) {
      AnnotateCloudPlacement(&placed->plan, /*edge_node=*/2,
                             /*cloud_node=*/1);
    } else {
      AnnotateEdgePushdownPlacement(&placed->plan, /*edge_node=*/2,
                                    /*cloud_node=*/1);
    }
    auto placed_id = engine.Submit(std::move(placed->plan));
    if (!placed_id.ok() || !engine.RunToCompletion(*placed_id).ok()) {
      std::fprintf(stderr, "placed run failed\n");
      return 1;
    }
    auto report = engine.Deployment(*placed_id);
    if (!report.ok()) {
      std::fprintf(stderr, "deployment: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    reports[variant] = *report;
    std::printf("  %-18s: %10.3f MB uplink, %6llu frames, %8.2f s "
                "transfer\n",
                labels[variant],
                static_cast<double>(report->uplink_bytes) / 1e6,
                static_cast<unsigned long long>(report->frames),
                report->total_transfer_seconds);
  }
  if (reports[1].uplink_bytes > 0) {
    std::printf("  %-18s: %9.1fx\n", "reduction",
                static_cast<double>(reports[0].uplink_bytes) /
                    static_cast<double>(reports[1].uplink_bytes));
  }
  std::printf("\nThis is the paper's Figure-1 claim made measurable: "
              "processing on the train ships\nonly alerts, not the raw "
              "sensor stream.\n");
  return 0;
}

/// \file distributed_edge.cpp
/// \brief Figure 1 as a runnable program: the fleet topology, operator
/// placement on the train's edge device, and the uplink traffic the
/// placement saves.
///
/// Run: `example_distributed_edge [events]` (default 200000).

#include <cstdio>

#include "nebula/topology.hpp"
#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT
using namespace nebulameos::queries;  // NOLINT

int main(int argc, char** argv) {
  uint64_t events = 200'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);

  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }

  // The reference deployment: a coordinator and a cloud worker in the data
  // center, six Intel-Atom-class edge workers aboard the trains, cellular
  // uplinks (1 MB/s, 60 ms).
  const Topology topo = Topology::SncbReference(6, 1e6, Millis(60));
  std::printf("topology:\n");
  for (const auto& node : topo.nodes()) {
    const char* kind = node.kind == NodeKind::kCoordinator ? "coordinator"
                       : node.kind == NodeKind::kCloudWorker ? "cloud-worker"
                                                             : "edge-worker";
    std::printf("  node %d  %-14s %s (cpu x%.1f)\n", node.id, kind,
                node.name.c_str(), node.cpu_factor);
  }
  std::printf("  %zu links (cellular uplinks: 1.0 MB/s, 60 ms)\n\n",
              topo.links().size());

  // Run Q1 on the engine to measure real per-operator flow, then price the
  // two placements.
  QueryOptions options;
  options.max_events = events;
  options.sink = SinkMode::kCounting;
  auto built = BuildQ1AlertFiltering(**env, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  NodeEngine engine;
  auto id = engine.Submit(std::move(built->plan));
  if (!id.ok() || !engine.RunToCompletion(*id).ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  auto stats = engine.Stats(*id);
  std::printf("query: Q1 alert filtering over %llu events (%.1f MB raw)\n",
              static_cast<unsigned long long>(stats->events_ingested),
              static_cast<double>(stats->bytes_ingested) / 1e6);
  std::printf("operator flow:\n");
  std::printf("  %-14s %12s %12s %12s\n", "operator", "events in",
              "events out", "selectivity");
  for (const auto& [name, op] : stats->operator_stats) {
    std::printf("  %-14s %12llu %12llu %11.4f%%\n", name.c_str(),
                static_cast<unsigned long long>(op.events_in),
                static_cast<unsigned long long>(op.events_out),
                op.Selectivity() * 100.0);
  }

  const size_t chain = stats->operator_stats.size();
  auto edge = SimulateDeployment(topo, stats->operator_stats,
                                 stats->bytes_ingested,
                                 EdgePushdownPlacement(chain, 2, 1));
  auto cloud = SimulateDeployment(topo, stats->operator_stats,
                                  stats->bytes_ingested,
                                  CloudPlacement(chain, 2, 1));
  if (!edge.ok() || !cloud.ok()) {
    std::fprintf(stderr, "deployment simulation failed\n");
    return 1;
  }
  std::printf("\nplacement comparison (train-0 -> cloud uplink):\n");
  std::printf("  ship raw to cloud : %10.3f MB uplink, %8.2f s transfer\n",
              static_cast<double>(cloud->uplink_bytes) / 1e6,
              cloud->total_transfer_seconds);
  std::printf("  edge pushdown     : %10.3f MB uplink, %8.2f s transfer\n",
              static_cast<double>(edge->uplink_bytes) / 1e6,
              edge->total_transfer_seconds);
  if (edge->uplink_bytes > 0) {
    std::printf("  reduction         : %9.1fx\n",
                static_cast<double>(cloud->uplink_bytes) /
                    static_cast<double>(edge->uplink_bytes));
  }
  std::printf("\nThis is the paper's Figure-1 claim made measurable: "
              "processing on the train ships\nonly alerts, not the raw "
              "sensor stream.\n");
  return 0;
}

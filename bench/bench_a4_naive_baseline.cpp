/// \file bench_a4_naive_baseline.cpp
/// \brief Ablation A4 — NebulaMEOS's integrated operators vs the "custom
/// code on a generic streamer" baseline the paper argues against.
///
/// The paper: systems like Kafka/Flink "do not natively manage
/// spatiotemporal analytics — users must create custom code ... which can
/// lead to complexity and resource overhead". We quantify one core piece:
/// per-event geofence containment, implemented (a) the naive way a custom
/// UDF would — test every zone polygon/circle exactly, no pruning — vs
/// (b) the NebulaMEOS way — bounding-box grid index, then exact tests on
/// candidates only. Same inputs, same answers, different cost.

#include <benchmark/benchmark.h>

#include "nebulameos/geofence.hpp"
#include "sncb/records.hpp"

namespace {

using namespace nebulameos;               // NOLINT
using namespace nebulameos::integration;  // NOLINT

struct Setup {
  sncb::RailNetwork network;
  GeofenceRegistry registry;
  std::vector<Point> probes;

  Setup() {
    network = sncb::BuildBelgianNetwork();
    sncb::PopulateSncbGeofences(network, &registry);
    // Realistic probe positions from the fleet simulator.
    sncb::FleetSimulator sim(&network, {});
    for (int i = 0; i < 4096; ++i) {
      const sncb::TrainEvent ev = sim.Next();
      probes.push_back({ev.lon, ev.lat});
    }
  }
};

Setup& GetSetup() {
  static Setup* setup = new Setup();
  return *setup;
}

// (a) The naive custom-UDF baseline: exact distance/containment against
// every registered zone, no boxes, no index.
bool NaiveInAnyZone(const GeofenceRegistry& registry, const Point& p) {
  for (const Zone& zone : registry.zones()) {
    bool inside = false;
    if (const auto* poly = std::get_if<Polygon>(&zone.shape)) {
      // Full even-odd scan of every edge, skipping the bbox reject.
      const auto& ring = poly->ring();
      const size_t n = ring.size();
      for (size_t i = 0, j = n - 1; i < n; j = i++) {
        const bool intersects =
            ((ring[i].y > p.y) != (ring[j].y > p.y)) &&
            (p.x < (ring[j].x - ring[i].x) * (p.y - ring[i].y) /
                           (ring[j].y - ring[i].y) +
                       ring[i].x);
        if (intersects) inside = !inside;
      }
    } else {
      const Circle& c = std::get<Circle>(zone.shape);
      inside = meos::HaversineMeters(p, c.center) <= c.radius;
    }
    if (inside) return true;
  }
  return false;
}

void BM_NaivePerEventScan(benchmark::State& state) {
  Setup& setup = GetSetup();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NaiveInAnyZone(setup.registry, setup.probes[i++ % setup.probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("naive: exact test on every zone");
}
BENCHMARK(BM_NaivePerEventScan);

void BM_MeosPrunedLookup(benchmark::State& state) {
  Setup& setup = GetSetup();
  setup.registry.SetIndexEnabled(true);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        setup.registry.InAnyZone(setup.probes[i++ % setup.probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("nebulameos: grid index + box pruning");
}
BENCHMARK(BM_MeosPrunedLookup);

// Agreement check run once at startup: both paths must give equal answers.
void BM_AgreementCheck(benchmark::State& state) {
  Setup& setup = GetSetup();
  setup.registry.SetIndexEnabled(true);
  int64_t mismatches = 0;
  for (auto _ : state) {
    for (const Point& p : setup.probes) {
      if (NaiveInAnyZone(setup.registry, p) !=
          setup.registry.InAnyZone(p)) {
        ++mismatches;
      }
    }
  }
  state.counters["mismatches"] = static_cast<double>(mismatches);
  state.SetItemsProcessed(state.iterations() * setup.probes.size());
}
BENCHMARK(BM_AgreementCheck)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();

/// \file bench_fig3_gcep.cpp
/// \brief Experiment Fig. 3e-3h — the GCEP queries' visualizations.
///
/// Runs Q5-Q8 in collect mode and regenerates the data series behind the
/// four GCEP panels of Figure 3 (battery deviation windows, heavy-load
/// windows, unscheduled stops, repeated emergency braking), written as CSV
/// under ./fig3_output/.

#include <sys/stat.h>

#include <cstdio>

#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT
using namespace nebulameos::queries;  // NOLINT

namespace {

std::vector<std::vector<Value>> RunCollect(const DemoEnvironment& env,
                                           int number, uint64_t events,
                                           QueryOptions options = {}) {
  options.max_events = events;
  options.sink = SinkMode::kCollect;
  auto built = BuildQuery(number, env, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build Q%d: %s\n", number,
                 built.status().ToString().c_str());
    return {};
  }
  NodeEngine engine;
  auto id = engine.Submit(std::move(built->plan));
  if (!id.ok() || !engine.RunToCompletion(*id).ok()) return {};
  return built->collect->Rows();
}

void WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<Value>>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::string line;
  for (size_t i = 0; i < header.size(); ++i) {
    if (i > 0) line += ',';
    line += header[i];
  }
  std::fprintf(f, "%s\n", line.c_str());
  for (const auto& row : rows) {
    line.clear();
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += ',';
      line += ValueToString(row[i]);
    }
    std::fprintf(f, "%s\n", line.c_str());
  }
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 600'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);
  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  ::mkdir("fig3_output", 0755);

  std::printf("Fig.3e-3h: GCEP query visualizations (%llu events)\n\n",
              static_cast<unsigned long long>(events));

  // Panel (e): battery monitoring — deviation windows + nearest workshop.
  {
    const auto rows = RunCollect(**env, 5, events);
    WriteCsv("fig3_output/fig3e_battery_monitoring.csv",
             {"train_id", "window_start", "window_end", "avg_deviation_v",
              "max_deviation_v", "max_temp_c", "lon", "lat", "samples",
              "workshop_id", "workshop_dist_m"},
             rows);
    double worst_dev = 0.0, nearest_ws = 1e18;
    for (const auto& row : rows) {
      worst_dev = std::max(worst_dev, ValueAsDouble(row[4]));
      nearest_ws = std::min(nearest_ws, ValueAsDouble(row[10]));
    }
    std::printf("(e) battery monitoring: %zu deviation windows | worst "
                "%.2f V | nearest workshop %.1f km\n",
                rows.size(), worst_dev,
                rows.empty() ? 0.0 : nearest_ws / 1000.0);
  }
  // Panel (f): heavy passenger load.
  {
    const auto rows = RunCollect(**env, 6, events);
    WriteCsv("fig3_output/fig3f_heavy_load.csv",
             {"train_id", "window_start", "window_end", "avg_passengers",
              "max_passengers", "seats", "avg_cabin_temp_c", "samples"},
             rows);
    double peak = 0.0;
    for (const auto& row : rows) {
      peak = std::max(peak, ValueAsDouble(row[4]));
    }
    std::printf("(f) heavy load: %zu overload windows (extra train "
                "suggested) | peak %d passengers\n",
                rows.size(), static_cast<int>(peak));
  }
  // Panel (g): unscheduled stops (stop probability raised so the panel has
  // content at this stream length, as in the demo video).
  {
    QueryOptions options;
    options.fleet.unscheduled_stop_prob = 4e-4;
    const auto rows = RunCollect(**env, 7, events, options);
    WriteCsv("fig3_output/fig3g_unscheduled_stops.csv",
             {"train_id", "match_start", "match_end", "stop_events",
              "stop_lon", "stop_lat"},
             rows);
    std::printf("(g) unscheduled stops: %zu flagged stops outside "
                "stations/workshops\n",
                rows.size());
  }
  // Panel (h): brake monitoring.
  {
    const auto rows = RunCollect(**env, 8, events);
    WriteCsv("fig3_output/fig3h_brake_monitoring.csv",
             {"train_id", "match_start", "match_end", "first_min_bar",
              "second_min_bar", "first_lon", "first_lat"},
             rows);
    int64_t per_train[8] = {0};
    for (const auto& row : rows) {
      ++per_train[ValueAsInt64(row[0]) % 8];
    }
    std::printf("(h) brake monitoring: %zu repeated-emergency matches | "
                "per train:",
                rows.size());
    for (int t = 0; t < 6; ++t) {
      std::printf(" %lld", static_cast<long long>(per_train[t]));
    }
    std::printf("\n");
  }
  std::printf("\nseries written to fig3_output/fig3{e,f,g,h}_*.csv\n");
  std::printf("Shape check: (e) flags only the degraded-battery train; "
              "(f) windows cluster in rush hours;\n(g) stops lie outside "
              "station/workshop zones; (h) matches concentrate on the "
              "degraded-brake train.\n");
  return 0;
}

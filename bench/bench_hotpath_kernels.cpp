/// \file bench_hotpath_kernels.cpp
/// \brief Hot-path microbench: interpreted `Expression::Eval` vs compiled
/// batch kernels, records/sec per workload, written to `BENCH_hotpath.json`.
///
/// Drives pre-filled buffers straight through compiled pipelines (no
/// source simulation, no engine threads), so the numbers isolate the
/// expression-evaluation and per-emit-hop hot path this PR rewrites:
///
///   - geofence_filter:   Filter(in_zone_kind(lon, lat, 'maintenance')) —
///                        the paper's Q1 shape; interpreted evaluation
///                        boxes three Values (one a heap string) per row.
///   - stbox_filter:      Filter(tpoint_at_stbox(...)) — the
///                        MeosAtStbox_Expression geofence primitive.
///   - arith_filter:      pure comparison/logic kernels.
///   - fused_filter_map:  Filter → Map → Project fused into one batch pass.
///   - passthrough:       two always-true filters — measures the per-emit
///                        hop (FunctionRef) and zero-copy passthrough.
///
/// The acceptance bar for this PR: compiled ≥ 2x interpreted on
/// geofence_filter and fused_filter_map.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "nebula/engine.hpp"
#include "nebula/worker_pool.hpp"
#include "nebulameos/plugin.hpp"

using namespace nebulameos;          // NOLINT
using namespace nebulameos::nebula;  // NOLINT

namespace {

Schema GeoSchema() {
  return Schema::Build()
      .AddInt64("train_id")
      .AddTimestamp("ts")
      .AddDouble("lon")
      .AddDouble("lat")
      .AddDouble("speed_kmh")
      .AddDouble("noise_db")
      .Finish();
}

// Deterministic LCG so both modes see identical data.
struct Lcg {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  double Next() {  // uniform [0, 1)
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  }
};

std::vector<TupleBufferPtr> MakeInputs(size_t buffers, size_t rows) {
  std::vector<TupleBufferPtr> out;
  Lcg rng;
  int64_t ts = 0;
  for (size_t b = 0; b < buffers; ++b) {
    auto buf = std::make_shared<TupleBuffer>(GeoSchema(), rows);
    for (size_t i = 0; i < rows; ++i) {
      RecordWriter w = buf->Append();
      w.SetInt64(0, static_cast<int64_t>(i % 40));
      w.SetInt64(1, ts += 1000);
      w.SetDouble(2, 4.3 + (rng.Next() - 0.5) * 0.3);   // lon
      w.SetDouble(3, 50.8 + (rng.Next() - 0.5) * 0.3);  // lat
      w.SetDouble(4, rng.Next() * 160.0);               // speed_kmh
      w.SetDouble(5, 40.0 + rng.Next() * 60.0);         // noise_db
    }
    buf->set_sequence_number(b);
    buf->set_watermark(ts);
    buf->Seal();
    out.push_back(std::move(buf));
  }
  return out;
}

std::shared_ptr<integration::GeofenceRegistry> MakeGeofences() {
  auto registry = std::make_shared<integration::GeofenceRegistry>();
  // A handful of maintenance circles scattered over the point cloud, so
  // the filter is selective but not degenerate.
  Lcg rng;
  for (int z = 0; z < 8; ++z) {
    meos::Circle circle;
    circle.center = {4.3 + (rng.Next() - 0.5) * 0.25,
                     50.8 + (rng.Next() - 0.5) * 0.25};
    circle.radius = 2500.0;  // meters
    registry->AddCircleZone("zone_" + std::to_string(z),
                            integration::ZoneKind::kMaintenance, circle);
  }
  return registry;
}

Status PushBatch(CompiledPipeline* pipe, size_t from,
                 const exec::Batch& batch) {
  if (from >= pipe->operators.size()) {
    if (pipe->sink) {
      return pipe->sink->ProcessBatch(batch, [](const exec::Batch&) {});
    }
    return Status::OK();
  }
  Status inner = Status::OK();
  auto forward = [&](const exec::Batch& out) {
    Status st = PushBatch(pipe, from + 1, out);
    if (!st.ok() && inner.ok()) inner = st;
  };
  Status s = pipe->operators[from]->ProcessBatch(batch, forward);
  return s.ok() ? inner : s;
}

struct Workload {
  std::string name;
  // Builds the plan fresh per mode (operators hold per-run stats/state).
  std::function<Result<LogicalPlan>()> build;
};

struct ModeResult {
  double mrecs_per_s = 0.0;
  uint64_t emitted = 0;
  uint64_t buffers_acquired = 0;
};

Result<ModeResult> RunMode(const Workload& workload, bool compiled,
                           const std::vector<TupleBufferPtr>& inputs,
                           int repeats) {
  NM_ASSIGN_OR_RETURN(LogicalPlan plan, workload.build());
  CompileOptions copts;
  copts.compiled_kernels = compiled;
  NM_ASSIGN_OR_RETURN(CompiledPipeline pipe,
                      CompilePlan(GeoSchema(), plan, nullptr, copts));
  ExecutionContext ctx(inputs.empty() ? 1024 : inputs[0]->capacity(), 256);
  for (OperatorPtr& op : pipe.operators) {
    NM_RETURN_NOT_OK(op->Open(&ctx));
  }
  if (pipe.sink) NM_RETURN_NOT_OK(pipe.sink->Open(&ctx));
  // Warmup (scratch columns size themselves, caches load).
  for (const TupleBufferPtr& buf : inputs) {
    NM_RETURN_NOT_OK(PushBatch(&pipe, 0, exec::Batch(buf)));
  }
  const int64_t start = MonotonicNowMicros();
  uint64_t rows = 0;
  for (int r = 0; r < repeats; ++r) {
    for (const TupleBufferPtr& buf : inputs) {
      rows += buf->size();
      NM_RETURN_NOT_OK(PushBatch(&pipe, 0, exec::Batch(buf)));
    }
  }
  const double seconds =
      static_cast<double>(MonotonicNowMicros() - start) / 1e6;
  ModeResult result;
  result.mrecs_per_s =
      seconds > 0.0 ? static_cast<double>(rows) / 1e6 / seconds : 0.0;
  result.buffers_acquired = ctx.TotalBuffersAcquired();
  for (const auto& op : pipe.operators) {
    (void)op;  // stats live in the operators; the sink has the emit count
  }
  if (pipe.sink) result.emitted = pipe.sink->stats().events_in;
  return result;
}

// Morsel-driven thread sweep: N fresh compiled pipelines (disjoint
// operator state), one strand each on a WorkerPool(N), sealed input
// buffers dispatched round-robin. Measures how the compiled hot path
// scales when the scheduler — not the kernels — is the variable.
struct SweepResult {
  static constexpr size_t kThreads[3] = {1, 2, 4};
  double mrecs_per_s[3] = {0.0, 0.0, 0.0};
  double speedup_t4 = 0.0;
  double efficiency = 0.0;  // speedup_t4 / 4
};

Result<SweepResult> RunThreadSweep(const Workload& workload,
                                   const std::vector<TupleBufferPtr>& inputs,
                                   int repeats) {
  SweepResult sweep;
  for (int ti = 0; ti < 3; ++ti) {
    const size_t n = SweepResult::kThreads[ti];
    // One pipeline + context per worker: workers never share operator
    // state, only the immutable sealed input buffers.
    std::vector<CompiledPipeline> pipes;
    std::vector<std::unique_ptr<ExecutionContext>> ctxs;
    pipes.reserve(n);
    for (size_t w = 0; w < n; ++w) {
      NM_ASSIGN_OR_RETURN(LogicalPlan plan, workload.build());
      CompileOptions copts;
      copts.compiled_kernels = true;
      NM_ASSIGN_OR_RETURN(CompiledPipeline pipe,
                          CompilePlan(GeoSchema(), plan, nullptr, copts));
      ctxs.push_back(std::make_unique<ExecutionContext>(
          inputs.empty() ? 1024 : inputs[0]->capacity(), 256));
      for (OperatorPtr& op : pipe.operators) {
        NM_RETURN_NOT_OK(op->Open(ctxs.back().get()));
      }
      if (pipe.sink) NM_RETURN_NOT_OK(pipe.sink->Open(ctxs.back().get()));
      pipes.push_back(std::move(pipe));
    }
    // Warmup every pipeline (scratch columns size themselves).
    for (size_t w = 0; w < n; ++w) {
      for (const TupleBufferPtr& buf : inputs) {
        NM_RETURN_NOT_OK(PushBatch(&pipes[w], 0, exec::Batch(buf)));
      }
    }
    std::atomic<uint64_t> errors{0};
    uint64_t rows = 0;
    const int64_t start = MonotonicNowMicros();
    {
      WorkerPool pool(n);
      std::vector<std::unique_ptr<WorkerPool::Strand>> strands;
      for (size_t w = 0; w < n; ++w) strands.push_back(pool.MakeStrand());
      size_t next = 0;
      for (int r = 0; r < repeats; ++r) {
        for (const TupleBufferPtr& buf : inputs) {
          rows += buf->size();
          const size_t w = next++ % n;
          CompiledPipeline* pipe = &pipes[w];
          strands[w]->Post([pipe, buf, &errors] {
            if (!PushBatch(pipe, 0, exec::Batch(buf)).ok()) {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
      }
      pool.Drain();
    }
    const double seconds =
        static_cast<double>(MonotonicNowMicros() - start) / 1e6;
    if (errors.load() != 0) {
      return Status::Internal(workload.name +
                              ": pipeline error during thread sweep");
    }
    sweep.mrecs_per_s[ti] =
        seconds > 0.0 ? static_cast<double>(rows) / 1e6 / seconds : 0.0;
  }
  sweep.speedup_t4 = sweep.mrecs_per_s[0] > 0.0
                         ? sweep.mrecs_per_s[2] / sweep.mrecs_per_s[0]
                         : 0.0;
  sweep.efficiency = sweep.speedup_t4 / 4.0;
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  int repeats = 60;
  if (argc > 2) repeats = std::atoi(argv[2]);

  auto geofences = MakeGeofences();
  if (Status st = integration::RegisterMeosPlugin(geofences); !st.ok()) {
    std::fprintf(stderr, "plugin: %s\n", st.ToString().c_str());
    return 1;
  }
  const std::vector<TupleBufferPtr> inputs = MakeInputs(32, 1024);
  auto counting = [] {
    return std::make_shared<CountingSink>(GeoSchema());
  };

  std::vector<Workload> workloads;
  workloads.push_back(
      {"geofence_filter", [&]() -> Result<LogicalPlan> {
         // The paper's geofence primitive (the MeosAtStbox_Expression):
         // restrict the stream's temporal point to a spatiotemporal box.
         return Query::From(std::make_unique<MemorySource>(GeoSchema(),
                                                           std::vector<std::vector<Value>>{}))
             .Filter(Fn("tpoint_at_stbox",
                        {Attribute("lon"), Attribute("lat"), Attribute("ts"),
                         Lit(4.25), Lit(50.75), Lit(4.4), Lit(50.9),
                         Lit(int64_t{0}),
                         Lit(int64_t{1} << 60)}))
             .To(counting())
             .Build();
       }});
  workloads.push_back(
      {"edwithin_filter", [&]() -> Result<LogicalPlan> {
         // §3.1 named-geofence alert shape: edwithin against one zone
         // (resolved at bind time). The per-row haversine dominates both
         // modes, so the compiled win is bounded by the distance math.
         return Query::From(std::make_unique<MemorySource>(GeoSchema(),
                                                           std::vector<std::vector<Value>>{}))
             .Filter(Fn("edwithin", {Attribute("lon"), Attribute("lat"),
                                     Lit(std::string("zone_3")),
                                     Lit(2500.0)}))
             .To(counting())
             .Build();
       }});
  workloads.push_back(
      {"zone_kind_filter", [&]() -> Result<LogicalPlan> {
         // Containment in *any* zone of a kind: the grid-index probe
         // dominates both modes — the honest lower bound on what kernel
         // compilation buys registry-bound predicates.
         return Query::From(std::make_unique<MemorySource>(GeoSchema(),
                                                           std::vector<std::vector<Value>>{}))
             .Filter(Fn("in_zone_kind", {Attribute("lon"), Attribute("lat"),
                                         Lit(std::string("maintenance"))}))
             .To(counting())
             .Build();
       }});
  workloads.push_back(
      {"arith_filter", [&]() -> Result<LogicalPlan> {
         return Query::From(std::make_unique<MemorySource>(GeoSchema(),
                                                           std::vector<std::vector<Value>>{}))
             .Filter(And(Gt(Mul(Attribute("speed_kmh"), Lit(1.0 / 3.6)),
                            Lit(25.0)),
                         Lt(Attribute("noise_db"), Lit(92.0))))
             .To(counting())
             .Build();
       }});
  workloads.push_back(
      {"fused_filter_map", [&]() -> Result<LogicalPlan> {
         return Query::From(std::make_unique<MemorySource>(GeoSchema(),
                                                           std::vector<std::vector<Value>>{}))
             .Filter(Gt(Attribute("speed_kmh"), Lit(60.0)))
             .Map("speed_ms", Mul(Attribute("speed_kmh"), Lit(1.0 / 3.6)))
             .Map("over_limit", Sub(Attribute("speed_kmh"), Lit(80.0)))
             .Project({"train_id", "ts", "speed_ms", "over_limit"})
             .To(std::make_shared<CountingSink>(Schema::Build()
                                                    .AddInt64("train_id")
                                                    .AddTimestamp("ts")
                                                    .AddDouble("speed_ms")
                                                    .AddDouble("over_limit")
                                                    .Finish()))
             .Build();
       }});
  workloads.push_back(
      {"passthrough", [&]() -> Result<LogicalPlan> {
         return Query::From(std::make_unique<MemorySource>(GeoSchema(),
                                                           std::vector<std::vector<Value>>{}))
             .Filter(Ge(Attribute("speed_kmh"), Lit(0.0)))
             .Filter(Ge(Attribute("noise_db"), Lit(0.0)))
             .To(counting())
             .Build();
       }});

  std::printf("Hot-path kernels: interpreted Expression::Eval vs compiled "
              "batch kernels\n");
  std::printf("%zu buffers x %zu records, %d timed passes per mode\n\n",
              inputs.size(), inputs.empty() ? 0 : inputs[0]->size(), repeats);
  std::printf("%-18s %12s %12s %9s %10s %10s\n", "workload", "interp",
              "compiled", "speedup", "emitted", "pool-draws");
  std::printf("%-18s %12s %12s %9s %10s %10s\n", "", "Mrec/s", "Mrec/s", "x",
              "rows/pass", "compiled");
  std::printf("--------------------------------------------------------------"
              "-----------\n");

  struct Row {
    std::string name;
    ModeResult interp;
    ModeResult compiled;
    SweepResult sweep;
  };
  std::vector<Row> rows;
  bool ok = true;
  for (const Workload& workload : workloads) {
    auto interp = RunMode(workload, /*compiled=*/false, inputs, repeats);
    auto compiled = RunMode(workload, /*compiled=*/true, inputs, repeats);
    auto sweep = RunThreadSweep(workload, inputs, repeats);
    if (!interp.ok() || !compiled.ok() || !sweep.ok()) {
      const Status& failure = !interp.ok()     ? interp.status()
                              : !compiled.ok() ? compiled.status()
                                               : sweep.status();
      std::fprintf(stderr, "%s failed: %s\n", workload.name.c_str(),
                   failure.ToString().c_str());
      ok = false;
      continue;
    }
    if (interp->emitted != compiled->emitted) {
      std::fprintf(stderr,
                   "%s: interpreted and compiled emitted different rows "
                   "(%llu vs %llu)\n",
                   workload.name.c_str(),
                   static_cast<unsigned long long>(interp->emitted),
                   static_cast<unsigned long long>(compiled->emitted));
      ok = false;
    }
    const double speedup = interp->mrecs_per_s > 0.0
                               ? compiled->mrecs_per_s / interp->mrecs_per_s
                               : 0.0;
    std::printf("%-18s %12.2f %12.2f %8.2fx %10llu %10llu\n",
                workload.name.c_str(), interp->mrecs_per_s,
                compiled->mrecs_per_s, speedup,
                static_cast<unsigned long long>(compiled->emitted /
                                                (repeats + 1)),
                static_cast<unsigned long long>(compiled->buffers_acquired));
    rows.push_back({workload.name, *interp, *compiled, *sweep});
  }

  // Morsel-driven scaling: compiled pipelines per worker on a
  // WorkerPool, sealed buffers round-robin across strands.
  std::printf("\nmorsel-driven thread sweep (compiled kernels)\n");
  std::printf("%-18s %10s %10s %10s %9s %11s\n", "workload", "t1 Mrec/s",
              "t2 Mrec/s", "t4 Mrec/s", "t4/t1", "efficiency");
  std::printf("--------------------------------------------------------------"
              "-----------\n");
  for (const Row& row : rows) {
    std::printf("%-18s %10.2f %10.2f %10.2f %8.2fx %10.0f%%\n",
                row.name.c_str(), row.sweep.mrecs_per_s[0],
                row.sweep.mrecs_per_s[1], row.sweep.mrecs_per_s[2],
                row.sweep.speedup_t4, row.sweep.efficiency * 100.0);
  }

  // Acceptance self-check: >= 2x on the geofence filter and the fused
  // filter+map chain. A shortfall is reported loudly (the JSON carries the
  // measured numbers either way) but does not fail the build — CI runners
  // are noisy.
  for (const Row& row : rows) {
    if (row.name != "geofence_filter" && row.name != "fused_filter_map") {
      continue;
    }
    const double speedup = row.interp.mrecs_per_s > 0.0
                               ? row.compiled.mrecs_per_s /
                                     row.interp.mrecs_per_s
                               : 0.0;
    if (speedup < 2.0) {
      std::fprintf(stderr, "ACCEPTANCE WARNING: %s speedup %.2fx < 2x\n",
                   row.name.c_str(), speedup);
    }
  }

  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json,
                 "{\n  \"bench\": \"hotpath_kernels\",\n"
                 "  \"records_per_pass\": %llu,\n  \"passes\": %d,\n"
                 "  \"workloads\": [\n",
                 static_cast<unsigned long long>(
                     inputs.size() * (inputs.empty() ? 0 : inputs[0]->size())),
                 repeats);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      const double speedup = row.interp.mrecs_per_s > 0.0
                                 ? row.compiled.mrecs_per_s /
                                       row.interp.mrecs_per_s
                                 : 0.0;
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"interpreted_mrecs_per_s\": %.3f,"
                   " \"compiled_mrecs_per_s\": %.3f,\n"
                   "     \"speedup\": %.3f, \"compiled_pool_draws\": %llu,\n"
                   "     \"ke_per_s_t1\": %.1f, \"ke_per_s_t2\": %.1f,"
                   " \"ke_per_s_t4\": %.1f,\n"
                   "     \"scaling_speedup_t4\": %.3f,"
                   " \"scaling_efficiency\": %.3f}%s\n",
                   row.name.c_str(), row.interp.mrecs_per_s,
                   row.compiled.mrecs_per_s, speedup,
                   static_cast<unsigned long long>(
                       row.compiled.buffers_acquired),
                   row.sweep.mrecs_per_s[0] * 1e3,
                   row.sweep.mrecs_per_s[1] * 1e3,
                   row.sweep.mrecs_per_s[2] * 1e3, row.sweep.speedup_t4,
                   row.sweep.efficiency, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    ok = false;
  }

  std::printf("\npassthrough isolates the per-buffer emit hop: both modes "
              "share the zero-copy\nselection path; the compiled column "
              "additionally skips the per-row interpreter.\n");
  return ok ? 0 : 1;
}

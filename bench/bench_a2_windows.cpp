/// \file bench_a2_windows.cpp
/// \brief Ablation A2 — cost of the window extensions (tumbling, sliding,
/// threshold) over spatiotemporal streams, by window type and key count.

#include <benchmark/benchmark.h>

#include "nebula/operators.hpp"

namespace {

using namespace nebulameos;          // NOLINT
using namespace nebulameos::nebula;  // NOLINT

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

// Builds one input buffer of `n` events across `keys` keys, 100 ms apart.
TupleBufferPtr MakeInput(size_t n, int64_t keys, Timestamp start) {
  auto buf = std::make_shared<TupleBuffer>(EventSchema(), n);
  for (size_t i = 0; i < n; ++i) {
    RecordWriter w = buf->Append();
    w.SetInt64(0, static_cast<int64_t>(i) % keys);
    w.SetInt64(1, start + static_cast<Timestamp>(i) * Millis(100));
    w.SetDouble(2, static_cast<double>(i % 100));
  }
  return buf;
}

void RunWindowBench(benchmark::State& state, const WindowSpec& spec) {
  const int64_t keys = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    WindowAggOptions opts;
    opts.key_field = "key";
    opts.time_field = "ts";
    opts.window = spec;
    opts.aggregates = {AggregateSpec::Avg("value", "avg"),
                       AggregateSpec::Max("value", "peak"),
                       AggregateSpec::Count("n")};
    auto op = WindowAggOperator::Make(EventSchema(), opts);
    ExecutionContext ctx;
    (void)(*op)->Open(&ctx);
    auto input = MakeInput(8192, keys, 0);
    state.ResumeTiming();
    (void)(*op)->Process(input, [](const TupleBufferPtr&) {});
    (void)(*op)->Finish([](const TupleBufferPtr&) {});
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}

void BM_TumblingWindow(benchmark::State& state) {
  RunWindowBench(state, TumblingWindowSpec{Seconds(10)});
}
BENCHMARK(BM_TumblingWindow)->Arg(1)->Arg(6)->Arg(64)->Arg(512);

void BM_SlidingWindow4x(benchmark::State& state) {
  // Slide = size/4: every event lands in 4 windows.
  RunWindowBench(state, SlidingWindowSpec{Seconds(10), Millis(2500)});
}
BENCHMARK(BM_SlidingWindow4x)->Arg(1)->Arg(6)->Arg(64)->Arg(512);

void BM_ThresholdWindow(benchmark::State& state) {
  const int64_t keys = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdWindowOptions opts;
    // ~half the events hold the predicate, giving frequent open/close.
    opts.predicate = Gt(Attribute("value"), Lit(50.0));
    opts.key_field = "key";
    opts.time_field = "ts";
    opts.aggregates = {AggregateSpec::Avg("value", "avg"),
                       AggregateSpec::Count("n")};
    auto op = ThresholdWindowOperator::Make(EventSchema(), opts);
    ExecutionContext ctx;
    (void)(*op)->Open(&ctx);
    auto input = MakeInput(8192, keys, 0);
    state.ResumeTiming();
    (void)(*op)->Process(input, [](const TupleBufferPtr&) {});
    (void)(*op)->Finish([](const TupleBufferPtr&) {});
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_ThresholdWindow)->Arg(1)->Arg(6)->Arg(64)->Arg(512);

void BM_WindowAssigner(benchmark::State& state) {
  auto assigner =
      WindowAssigner::Make(SlidingWindowSpec{Seconds(10), Seconds(1)});
  std::vector<Timestamp> starts;
  Timestamp t = 0;
  for (auto _ : state) {
    assigner->AssignWindows(t, &starts);
    benchmark::DoNotOptimize(starts.data());
    t += Millis(100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowAssigner);

}  // namespace

BENCHMARK_MAIN();

/// \file bench_a5_cep.cpp
/// \brief Ablation A5 — CEP kernel throughput vs pattern length and key
/// count (the GCEP substrate of Q5-Q8).

#include <benchmark/benchmark.h>

#include "nebula/cep.hpp"

namespace {

using namespace nebulameos;          // NOLINT
using namespace nebulameos::nebula;  // NOLINT

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

Pattern MakePattern(int steps) {
  Pattern p;
  for (int s = 0; s < steps; ++s) {
    // Each step matches a distinct value band so runs progress through the
    // sequence as the (cyclic) input sweeps bands.
    const double lo = 10.0 * s;
    p.steps.push_back(PatternStep{
        "s" + std::to_string(s),
        And(Ge(Attribute("value"), Lit(lo)),
            Lt(Attribute("value"), Lit(lo + 10.0))),
        false, false});
  }
  p.within = Minutes(30);
  p.key_field = "key";
  p.time_field = "ts";
  return p;
}

TupleBufferPtr MakeInput(size_t n, int64_t keys, int bands) {
  auto buf = std::make_shared<TupleBuffer>(EventSchema(), n);
  for (size_t i = 0; i < n; ++i) {
    RecordWriter w = buf->Append();
    w.SetInt64(0, static_cast<int64_t>(i) % keys);
    w.SetInt64(1, static_cast<Timestamp>(i) * Millis(100));
    // Cycle through the value bands so patterns complete regularly.
    w.SetDouble(2, 10.0 * static_cast<double>((i / keys) % bands) + 5.0);
  }
  return buf;
}

void BM_CepPatternLength(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto op = CepOperator::Make(EventSchema(), MakePattern(steps),
                                {Measure::Count("s0", "n")});
    ExecutionContext ctx;
    (void)(*op)->Open(&ctx);
    auto input = MakeInput(8192, 6, steps);
    state.ResumeTiming();
    (void)(*op)->Process(input, [](const TupleBufferPtr&) {});
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_CepPatternLength)->Arg(2)->Arg(3)->Arg(5)->Arg(8);

void BM_CepKeyCount(benchmark::State& state) {
  const int64_t keys = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    auto op = CepOperator::Make(EventSchema(), MakePattern(3),
                                {Measure::Count("s0", "n")});
    ExecutionContext ctx;
    (void)(*op)->Open(&ctx);
    auto input = MakeInput(8192, keys, 3);
    state.ResumeTiming();
    (void)(*op)->Process(input, [](const TupleBufferPtr&) {});
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_CepKeyCount)->Arg(1)->Arg(6)->Arg(64)->Arg(512);

void BM_CepKleene(benchmark::State& state) {
  Pattern p;
  p.steps = {
      PatternStep{"start", Lt(Attribute("value"), Lit(10.0)), false, false},
      PatternStep{"burst", Ge(Attribute("value"), Lit(10.0)), false, true},
      PatternStep{"end", Lt(Attribute("value"), Lit(10.0)), false, false}};
  p.within = Minutes(30);
  p.key_field = "key";
  p.time_field = "ts";
  for (auto _ : state) {
    state.PauseTiming();
    auto op = CepOperator::Make(EventSchema(), p,
                                {Measure::Count("burst", "n"),
                                 Measure::Max("burst", "value", "peak")});
    ExecutionContext ctx;
    (void)(*op)->Open(&ctx);
    auto input = MakeInput(8192, 6, 2);
    state.ResumeTiming();
    (void)(*op)->Process(input, [](const TupleBufferPtr&) {});
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_CepKleene);

}  // namespace

BENCHMARK_MAIN();

/// \file bench_fleet_serving.cpp
/// \brief Fleet-scale serving benchmark: N trains each submit K=3
/// structurally prefix-equal placed queries. Shared mode routes them
/// through a `SharedQueryManager` (one ingest host and one uplink channel
/// per train); the baseline submits the same 3N placed plans as
/// independent engine queries. Reports queries-per-node and total wire
/// bytes at 10/100/1000 trains and writes `BENCH_fleet.json`.
///
/// Usage: bench_fleet_serving [rows_per_train_at_10] [json_path]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "nebula/serving/fleet.hpp"
#include "nebula/serving/merge.hpp"

using namespace nebulameos;                   // NOLINT
using namespace nebulameos::nebula;           // NOLINT
using namespace nebulameos::nebula::serving;  // NOLINT

namespace {

constexpr int kQueriesPerTrain = 3;

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("train")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(int train, size_t n) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value{static_cast<int64_t>(train)},
                    Value{Seconds(static_cast<int64_t>(i))},
                    Value{static_cast<double>(i % 10)}});
  }
  return rows;
}

std::unique_ptr<MemorySource> TrainSource(int train, size_t rows) {
  auto src = std::make_unique<MemorySource>(EventSchema(),
                                            MakeRows(train, rows),
                                            /*rounds=*/1, "ts");
  src->SetLogicalName("fleet_positions");
  return src;
}

/// The k-th query of a train: all K share the `Filter(value >= 2)` ingest
/// prefix; the suffix tightens the alert threshold differently per k.
Result<LogicalPlan> TrainQuery(int train, int k, size_t rows,
                               std::shared_ptr<SinkOperator> sink) {
  const double thresholds[kQueriesPerTrain] = {2.0, 5.0, 8.0};
  Query q = Query::From(TrainSource(train, rows))
                .Filter(Ge(Attribute("value"), Lit(2.0)));
  if (k == 0) return std::move(q).To(std::move(sink)).Build();
  return std::move(q)
      .Filter(Ge(Attribute("value"), Lit(thresholds[k])))
      .To(std::move(sink))
      .Build();
}

struct ModeResult {
  size_t clients = 0;
  size_t hosted_plans = 0;
  double queries_per_node = 0.0;
  uint64_t wire_bytes = 0;
  uint64_t rows_out = 0;
  double seconds = 0.0;
  bool ok = true;
};

/// Shared serving: one engine + manager, K queries per train merged onto
/// one host per train; per-train alert streams union at the coordinator.
ModeResult RunShared(const FleetDeployment& fleet, size_t rows_per_train) {
  ModeResult result;
  const int64_t t0 = MonotonicNowMicros();

  NodeEngine engine(fleet.MakeEngineOptions());
  SharedQueryManager manager(&engine);
  MergeNode merge(EventSchema(), "ts");

  std::vector<int> vids;
  for (int train = 0; train < fleet.num_trains(); ++train) {
    for (int k = 0; k < kQueriesPerTrain; ++k) {
      const int stream = train * kQueriesPerTrain + k;
      auto plan = TrainQuery(train, k, rows_per_train, merge.InputFor(stream));
      if (!plan.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     plan.status().message().c_str());
        result.ok = false;
        return result;
      }
      auto vid = fleet.SubmitTrainQuery(&manager, train, std::move(*plan));
      if (!vid.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     vid.status().message().c_str());
        result.ok = false;
        return result;
      }
      vids.push_back(*vid);
    }
  }

  result.clients = manager.NumClientQueries();
  result.hosted_plans = manager.NumHostedPlans();
  result.queries_per_node = result.hosted_plans == 0
                                ? 0.0
                                : static_cast<double>(result.clients) /
                                      static_cast<double>(result.hosted_plans);

  for (int vid : vids) {
    Status st = manager.Start(vid);
    if (!st.ok()) {
      std::fprintf(stderr, "start failed: %s\n", st.message().c_str());
      result.ok = false;
      return result;
    }
  }
  for (int vid : vids) {
    Status st = manager.Wait(vid);
    if (!st.ok()) {
      std::fprintf(stderr, "wait failed: %s\n", st.message().c_str());
      result.ok = false;
      return result;
    }
  }
  merge.CloseAllInputs();

  // One deployment report per *host* — the shared uplink ships once for
  // all of a train's branches, so summing per client would double count.
  for (int host : manager.Hosts()) {
    auto report = engine.Deployment(host);
    if (report.ok()) result.wire_bytes += report->wire_bytes;
  }
  result.rows_out = merge.RowCount();
  result.seconds = static_cast<double>(MonotonicNowMicros() - t0) / 1e6;
  return result;
}

/// Baseline: the same 3N placed plans as independent engine queries, each
/// with its own ingest pipeline and its own uplink channel.
ModeResult RunIndependent(const FleetDeployment& fleet,
                          size_t rows_per_train) {
  ModeResult result;
  const int64_t t0 = MonotonicNowMicros();

  NodeEngine engine(fleet.MakeEngineOptions());
  std::vector<int> ids;
  std::vector<std::shared_ptr<CountingSink>> sinks;
  for (int train = 0; train < fleet.num_trains(); ++train) {
    for (int k = 0; k < kQueriesPerTrain; ++k) {
      auto sink = std::make_shared<CountingSink>(EventSchema());
      auto plan = TrainQuery(train, k, rows_per_train, sink);
      if (!plan.ok()) {
        result.ok = false;
        return result;
      }
      AnnotateEdgePushdownPlacement(&*plan, fleet.edge_node(train),
                                    fleet.cloud_node());
      auto id = engine.Submit(std::move(*plan));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     id.status().message().c_str());
        result.ok = false;
        return result;
      }
      ids.push_back(*id);
      sinks.push_back(std::move(sink));
    }
  }

  result.clients = ids.size();
  result.hosted_plans = ids.size();
  result.queries_per_node = 1.0;

  for (int id : ids) {
    Status st = engine.RunToCompletion(id);
    if (!st.ok()) {
      std::fprintf(stderr, "run failed: %s\n", st.message().c_str());
      result.ok = false;
      return result;
    }
    auto report = engine.Deployment(id);
    if (report.ok()) result.wire_bytes += report->wire_bytes;
  }
  for (const auto& sink : sinks) result.rows_out += sink->events();
  result.seconds = static_cast<double>(MonotonicNowMicros() - t0) / 1e6;
  return result;
}

struct FleetRun {
  int trains = 0;
  size_t rows_per_train = 0;
  ModeResult shared;
  ModeResult independent;
};

}  // namespace

int main(int argc, char** argv) {
  size_t base_rows = 2000;
  if (argc > 1) base_rows = std::strtoull(argv[1], nullptr, 10);
  const char* json_path = argc > 2 ? argv[2] : "BENCH_fleet.json";

  const int fleet_sizes[] = {10, 100, 1000};
  std::vector<FleetRun> runs;
  bool all_ok = true;

  for (int trains : fleet_sizes) {
    // Keep total event volume roughly flat as the fleet grows.
    const size_t rows =
        trains <= 10 ? base_rows
                     : (trains <= 100 ? std::max<size_t>(base_rows / 4, 40)
                                      : std::max<size_t>(base_rows / 20, 40));
    FleetDeployment fleet(FleetOptions{trains});

    FleetRun run;
    run.trains = trains;
    run.rows_per_train = rows;
    run.shared = RunShared(fleet, rows);
    run.independent = RunIndependent(fleet, rows);
    all_ok = all_ok && run.shared.ok && run.independent.ok;

    // Row-set equivalence: sharing must not change what the queries emit.
    if (run.shared.rows_out != run.independent.rows_out) {
      std::fprintf(stderr,
                   "row mismatch at %d trains: shared=%llu independent=%llu\n",
                   trains,
                   static_cast<unsigned long long>(run.shared.rows_out),
                   static_cast<unsigned long long>(run.independent.rows_out));
      all_ok = false;
    }
    runs.push_back(run);
  }

  std::printf(
      "%8s %8s %8s %8s %14s %16s %16s %10s\n", "trains", "clients", "hosts",
      "q/node", "rows_out", "shared_wire_B", "indep_wire_B", "reduction");
  for (const FleetRun& run : runs) {
    const double reduction =
        run.independent.wire_bytes == 0
            ? 0.0
            : 1.0 - static_cast<double>(run.shared.wire_bytes) /
                        static_cast<double>(run.independent.wire_bytes);
    std::printf("%8d %8zu %8zu %8.2f %14llu %16llu %16llu %9.1f%%\n",
                run.trains, run.shared.clients, run.shared.hosted_plans,
                run.shared.queries_per_node,
                static_cast<unsigned long long>(run.shared.rows_out),
                static_cast<unsigned long long>(run.shared.wire_bytes),
                static_cast<unsigned long long>(run.independent.wire_bytes),
                reduction * 100.0);
  }

  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"fleet_serving\",\n");
  std::fprintf(f, "  \"queries_per_train\": %d,\n  \"fleets\": [\n",
               kQueriesPerTrain);
  for (size_t i = 0; i < runs.size(); ++i) {
    const FleetRun& run = runs[i];
    const double reduction =
        run.independent.wire_bytes == 0
            ? 0.0
            : 1.0 - static_cast<double>(run.shared.wire_bytes) /
                        static_cast<double>(run.independent.wire_bytes);
    std::fprintf(f, "    {\n      \"trains\": %d,\n", run.trains);
    std::fprintf(f, "      \"rows_per_train\": %zu,\n", run.rows_per_train);
    std::fprintf(f,
                 "      \"shared\": {\"clients\": %zu, \"hosted_plans\": %zu, "
                 "\"queries_per_node\": %.4f, \"wire_bytes\": %llu, "
                 "\"rows_out\": %llu, \"seconds\": %.4f},\n",
                 run.shared.clients, run.shared.hosted_plans,
                 run.shared.queries_per_node,
                 static_cast<unsigned long long>(run.shared.wire_bytes),
                 static_cast<unsigned long long>(run.shared.rows_out),
                 run.shared.seconds);
    std::fprintf(f,
                 "      \"independent\": {\"clients\": %zu, \"hosted_plans\": "
                 "%zu, \"queries_per_node\": %.4f, \"wire_bytes\": %llu, "
                 "\"rows_out\": %llu, \"seconds\": %.4f},\n",
                 run.independent.clients, run.independent.hosted_plans,
                 run.independent.queries_per_node,
                 static_cast<unsigned long long>(run.independent.wire_bytes),
                 static_cast<unsigned long long>(run.independent.rows_out),
                 run.independent.seconds);
    std::fprintf(f, "      \"wire_reduction\": %.4f\n    }%s\n", reduction,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);

  if (!all_ok) return 1;
  // The headline claims: sharing collapses K queries onto one host per
  // train and ships the uplink stream once instead of K times.
  for (const FleetRun& run : runs) {
    if (run.shared.queries_per_node < 2.9 ||
        run.shared.wire_bytes >= run.independent.wire_bytes) {
      std::fprintf(stderr, "sharing claim failed at %d trains\n", run.trains);
      return 1;
    }
  }
  return 0;
}

/// \file bench_fig3_geofencing.cpp
/// \brief Experiment Fig. 3a-3d — the geofencing queries' visualizations.
///
/// Figure 3 shows one panel per query: routes annotated with alerts/flags
/// produced as the stream flows. This harness runs Q1-Q4 in collect mode
/// and regenerates each panel's data series: the alert events with their
/// positions, plus summary statistics. Series are written as CSV under
/// ./fig3_output/ (one file per panel) so any plotting tool can render the
/// panels; a compact summary is printed here.

#include <sys/stat.h>

#include <cstdio>

#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT
using namespace nebulameos::queries;  // NOLINT

namespace {

std::vector<std::vector<Value>> RunCollect(const DemoEnvironment& env,
                                           int number, uint64_t events) {
  QueryOptions options;
  options.max_events = events;
  options.sink = SinkMode::kCollect;
  auto built = BuildQuery(number, env, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build Q%d: %s\n", number,
                 built.status().ToString().c_str());
    return {};
  }
  NodeEngine engine;
  auto id = engine.Submit(std::move(built->plan));
  if (!id.ok() || !engine.RunToCompletion(*id).ok()) return {};
  return built->collect->Rows();
}

void WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<Value>>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::string line;
  for (size_t i = 0; i < header.size(); ++i) {
    if (i > 0) line += ',';
    line += header[i];
  }
  std::fprintf(f, "%s\n", line.c_str());
  for (const auto& row : rows) {
    line.clear();
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += ',';
      line += ValueToString(row[i]);
    }
    std::fprintf(f, "%s\n", line.c_str());
  }
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 300'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);
  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  ::mkdir("fig3_output", 0755);

  std::printf("Fig.3a-3d: geofencing query visualizations (%llu events)\n\n",
              static_cast<unsigned long long>(events));

  // Panel (a): alert filtering — surviving alerts by train.
  {
    const auto rows = RunCollect(**env, 1, events);
    WriteCsv("fig3_output/fig3a_alert_filtering.csv",
             {"train_id", "ts", "lon", "lat", "speed_ms", "event_type"}, rows);
    int64_t by_train[8] = {0};
    for (const auto& row : rows) {
      ++by_train[ValueAsInt64(row[0]) % 8];
    }
    std::printf("(a) alert filtering: %zu surviving alerts | per train:",
                rows.size());
    for (int t = 0; t < 6; ++t) {
      std::printf(" %lld", static_cast<long long>(by_train[t]));
    }
    std::printf("\n");
  }
  // Panel (b): noise monitoring — per-zone windows.
  {
    const auto rows = RunCollect(**env, 2, events);
    WriteCsv("fig3_output/fig3b_noise_monitoring.csv",
             {"zone", "window_start", "window_end", "avg_noise_db",
              "max_noise_db", "events"},
             rows);
    double peak = 0.0;
    for (const auto& row : rows) {
      peak = std::max(peak, ValueAsDouble(row[4]));
    }
    std::printf("(b) noise monitoring: %zu zone-windows | peak %.1f dB\n",
                rows.size(), peak);
  }
  // Panel (c): dynamic speed limit — violations.
  {
    const auto rows = RunCollect(**env, 3, events);
    WriteCsv("fig3_output/fig3c_speed_monitoring.csv",
             {"train_id", "ts", "lon", "lat", "speed_kmh", "limit_kmh"}, rows);
    double worst = 0.0;
    for (const auto& row : rows) {
      worst = std::max(worst,
                       ValueAsDouble(row[4]) - ValueAsDouble(row[5]));
    }
    std::printf("(c) dynamic speed limit: %zu violations | worst excess "
                "%.1f km/h\n",
                rows.size(), worst);
  }
  // Panel (d): weather-based speed zones.
  {
    const auto rows = RunCollect(**env, 4, events);
    WriteCsv("fig3_output/fig3d_weather_speed_zones.csv",
             {"train_id", "ts", "lon", "lat", "speed_kmh", "limit_kmh",
              "weather_condition", "weather_intensity"},
             rows);
    int64_t by_condition[5] = {0};
    for (const auto& row : rows) {
      ++by_condition[ValueAsInt64(row[6]) % 5];
    }
    std::printf("(d) weather speed zones: %zu advisories | clear/rain/heavy/"
                "snow/fog: %lld/%lld/%lld/%lld/%lld\n",
                rows.size(), static_cast<long long>(by_condition[0]),
                static_cast<long long>(by_condition[1]),
                static_cast<long long>(by_condition[2]),
                static_cast<long long>(by_condition[3]),
                static_cast<long long>(by_condition[4]));
  }
  std::printf("\nseries written to fig3_output/fig3{a,b,c,d}_*.csv\n");
  std::printf("Shape check: (a) alerts survive only outside maintenance "
              "zones; (c)/(d) flag only over-limit\nevents; (d) advisories "
              "concentrate in degraded weather.\n");
  return 0;
}

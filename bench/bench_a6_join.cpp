/// \file bench_a6_join.cpp
/// \brief Ablation A6 — cost of the temporal lookup join (the Q4 weather
/// integration) by lookup-table size and hit rate.

#include <benchmark/benchmark.h>

#include "nebula/join.hpp"
#include "nebula/source.hpp"

namespace {

using namespace nebulameos;          // NOLINT
using namespace nebulameos::nebula;  // NOLINT

Schema LeftSchema() {
  return Schema::Build()
      .AddInt64("cell")
      .AddTimestamp("ts")
      .AddDouble("reading")
      .Finish();
}

Schema RightSchema() {
  return Schema::Build()
      .AddInt64("cell")
      .AddTimestamp("ts")
      .AddInt64("condition")
      .AddDouble("intensity")
      .Finish();
}

// Right side: `cells` keys x `per_key` observations, 15 minutes apart.
std::shared_ptr<Source> MakeRight(int64_t cells, int per_key) {
  std::vector<std::vector<Value>> rows;
  for (int64_t c = 0; c < cells; ++c) {
    for (int i = 0; i < per_key; ++i) {
      rows.push_back({Value(c), Value(Minutes(15) * i),
                      Value(int64_t{i % 5}), Value(0.5)});
    }
  }
  return std::make_shared<MemorySource>(RightSchema(), std::move(rows), 1,
                                        "ts");
}

void BM_LookupJoin(benchmark::State& state) {
  const int64_t cells = state.range(0);
  const int per_key = static_cast<int>(state.range(1));
  TemporalLookupJoinOptions options;
  options.lookup = MakeRight(cells, per_key);
  options.left_key = "cell";
  options.right_key = "cell";
  options.left_time = "ts";
  options.right_time = "ts";
  options.max_age = Hours(1);
  auto op = TemporalLookupJoinOperator::Make(LeftSchema(), options);
  ExecutionContext ctx;
  (void)(*op)->Open(&ctx);

  auto input = std::make_shared<TupleBuffer>(LeftSchema(), 8192);
  for (int i = 0; i < 8192; ++i) {
    RecordWriter w = input->Append();
    w.SetInt64(0, i % cells);
    w.SetInt64(1, Minutes(15) * ((i / 64) % per_key) + Seconds(30));
    w.SetDouble(2, static_cast<double>(i));
  }
  for (auto _ : state) {
    (void)(*op)->Process(input, [](const TupleBufferPtr&) {});
  }
  state.SetItemsProcessed(state.iterations() * 8192);
  state.SetLabel(std::to_string(cells) + " keys x " +
                 std::to_string(per_key) + " observations");
}
BENCHMARK(BM_LookupJoin)
    ->Args({6, 96})      // the Q4 weather table: 6 cells x 24h/15min
    ->Args({64, 96})
    ->Args({6, 4096})
    ->Args({1024, 96});

void BM_LookupJoinMissHeavy(benchmark::State& state) {
  TemporalLookupJoinOptions options;
  options.lookup = MakeRight(6, 96);
  options.left_key = "cell";
  options.right_key = "cell";
  options.left_time = "ts";
  options.right_time = "ts";
  options.max_age = Hours(1);
  auto op = TemporalLookupJoinOperator::Make(LeftSchema(), options);
  ExecutionContext ctx;
  (void)(*op)->Open(&ctx);
  // Every probe uses an unknown key: pure miss path.
  auto input = std::make_shared<TupleBuffer>(LeftSchema(), 8192);
  for (int i = 0; i < 8192; ++i) {
    RecordWriter w = input->Append();
    w.SetInt64(0, 1000 + i % 7);
    w.SetInt64(1, Minutes(i % 90));
    w.SetDouble(2, 0.0);
  }
  for (auto _ : state) {
    (void)(*op)->Process(input, [](const TupleBufferPtr&) {});
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_LookupJoinMissHeavy);

}  // namespace

BENCHMARK_MAIN();

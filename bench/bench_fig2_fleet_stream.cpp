/// \file bench_fig2_fleet_stream.cpp
/// \brief Experiment Fig. 2 — the SNCB data visualization.
///
/// Figure 2 renders the fleet's positions/routes over Belgium. This harness
/// regenerates the data behind that figure — per-train trajectory summaries
/// (events, distance, speed, spatiotemporal extent) — and measures the raw
/// fleet-stream generation/ingestion rate. The GeoJSON for an actual map
/// render is produced by examples/export_visualization.

#include <cstdio>

#include "meos/agg.hpp"
#include "sncb/records.hpp"

using namespace nebulameos;        // NOLINT
using namespace nebulameos::sncb;  // NOLINT

int main(int argc, char** argv) {
  uint64_t events = 600'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);

  const RailNetwork network = BuildBelgianNetwork();
  FleetConfig config;
  FleetSimulator sim(&network, config);

  struct PerTrain {
    std::vector<meos::TInstant<meos::Point>> instants;
    double max_speed = 0.0;
    uint64_t events = 0;
  };
  std::vector<PerTrain> trains(config.num_trains);

  const int64_t t0 = MonotonicNowMicros();
  for (uint64_t i = 0; i < events; ++i) {
    const TrainEvent ev = sim.Next();
    PerTrain& train = trains[static_cast<size_t>(ev.train_id)];
    // Subsample each train's trajectory (1 in 7, per train — a global
    // stride would alias with the round-robin) to keep the summary light;
    // speed tracked on every event.
    if (train.events++ % 7 == 0) {
      train.instants.push_back({meos::Point{ev.lon, ev.lat}, ev.ts});
    }
    train.max_speed = std::max(train.max_speed, ev.speed_ms);
  }
  const double gen_seconds =
      static_cast<double>(MonotonicNowMicros() - t0) / 1e6;

  std::printf("Fig.2: SNCB fleet overview (%llu events, seed %llu)\n\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(config.seed));
  std::printf("%-8s %9s %12s %11s %11s  %-28s\n", "train", "points",
              "distance km", "avg km/h", "max km/h", "extent (lon/lat box)");
  std::printf("--------------------------------------------------------------"
              "-------------------\n");
  meos::ExtentAggregator fleet_extent;
  for (size_t t = 0; t < trains.size(); ++t) {
    auto seq = meos::TGeomPointSeq::Make(std::move(trains[t].instants));
    if (!seq.ok()) continue;
    const double km = meos::Length(*seq, meos::Metric::kWgs84) / 1000.0;
    const double hours = ToSeconds(seq->DurationMicros()) / 3600.0;
    const meos::STBox extent = meos::BoundingBox(*seq);
    fleet_extent.Add(*seq);
    std::printf("%-8zu %9zu %12.1f %11.1f %11.1f  [%.2f,%.2f]x[%.2f,%.2f]\n",
                t, seq->size(), km, hours > 0 ? km / hours : 0.0,
                trains[t].max_speed * 3.6, extent.xmin(), extent.xmax(),
                extent.ymin(), extent.ymax());
  }
  if (fleet_extent.extent()) {
    std::printf("\nfleet extent: %s\n",
                fleet_extent.extent()->ToString().c_str());
  }
  std::printf("stream generation rate: %.0f events/s (%.2f MB/s at the "
              "112-byte geofencing record)\n",
              static_cast<double>(events) / gen_seconds,
              static_cast<double>(events) * 112.0 / 1e6 / gen_seconds);
  std::printf("\nShape check: six trains shuttling on Belgian IC lines; all "
              "extents inside [2.5,6.1]x[49.4,51.5].\n");
  return 0;
}

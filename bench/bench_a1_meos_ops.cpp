/// \file bench_a1_meos_ops.cpp
/// \brief Ablation A1 — the cost of the MEOS operations NebulaMEOS calls
/// per record/window, and the value of STBox/grid pruning.
///
/// The paper's premise is that MEOS's "optimized implementation allows
/// MEOS to run on low-end edge devices". These microbenchmarks measure the
/// operator costs that premise rests on: `edwithin` (hit/miss — the miss
/// path is the box-pruned fast path), `tpoint_at_stbox`, point-in-polygon,
/// speed, `tdwithin`, and the geofence lookup with the grid index on vs
/// off (linear scan).

#include <benchmark/benchmark.h>

#include "meos/tgeompoint.hpp"
#include "nebulameos/geofence.hpp"
#include "sncb/network.hpp"

namespace {

using namespace nebulameos;        // NOLINT
using namespace nebulameos::meos;  // NOLINT

// A 512-instant trajectory heading north through Brussels.
TGeomPointSeq MakeTrajectory(size_t n = 512) {
  std::vector<TInstant<Point>> instants;
  instants.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    instants.push_back({Point{4.35 + 1e-5 * static_cast<double>(i % 7),
                              50.70 + 1e-4 * static_cast<double>(i)},
                        static_cast<Timestamp>(i) * Seconds(1)});
  }
  auto seq = TGeomPointSeq::Make(std::move(instants));
  return *seq;
}

void BM_EdwithinHit(benchmark::State& state) {
  const TGeomPointSeq traj = MakeTrajectory();
  const Point target{4.351, 50.72};  // on the corridor
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EverDWithin(traj, target, 500.0, Metric::kWgs84));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdwithinHit);

void BM_EdwithinMissBoxPruned(benchmark::State& state) {
  const TGeomPointSeq traj = MakeTrajectory();
  const Point target{5.9, 49.6};  // far away: pruned by the bounding box
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EverDWithin(traj, target, 500.0, Metric::kWgs84));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdwithinMissBoxPruned);

void BM_EdwithinMissNearBox(benchmark::State& state) {
  const TGeomPointSeq traj = MakeTrajectory();
  // ~67 m past the trajectory's north end: inside the (conservatively)
  // expanded box, but beyond the 50 m distance — the exact per-segment
  // path must run and still answer false.
  const Point target{4.35, 50.7517};
  for (auto _ : state) {
    const bool within = EverDWithin(traj, target, 50.0, Metric::kWgs84);
    benchmark::DoNotOptimize(within);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdwithinMissNearBox);

void BM_TPointAtStbox(benchmark::State& state) {
  const TGeomPointSeq traj = MakeTrajectory();
  auto box = STBox::Make(4.30, 50.71, 4.40, 50.73,
                         Period(Seconds(50), Seconds(400)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AtStbox(traj, *box));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TPointAtStbox);

void BM_Speed(benchmark::State& state) {
  const TGeomPointSeq traj = MakeTrajectory();
  for (auto _ : state) {
    auto speed = Speed(traj, Metric::kWgs84);
    benchmark::DoNotOptimize(speed);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Speed);

void BM_TDwithin(benchmark::State& state) {
  const TGeomPointSeq traj = MakeTrajectory();
  const Point target{4.351, 50.72};
  for (auto _ : state) {
    auto tb = TDwithin(traj, target, 800.0, Metric::kWgs84);
    benchmark::DoNotOptimize(tb);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TDwithin);

void BM_PointInPolygon(benchmark::State& state) {
  // Polygon with `range` vertices.
  std::vector<Point> ring;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    ring.push_back({4.35 + 0.1 * std::cos(a), 50.8 + 0.1 * std::sin(a)});
  }
  auto poly = Polygon::Make(std::move(ring));
  const Point inside{4.36, 50.82};
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly->Contains(inside));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointInPolygon)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_GeofenceLookup(benchmark::State& state) {
  using namespace nebulameos::integration;  // NOLINT
  const sncb::RailNetwork network = sncb::BuildBelgianNetwork();
  GeofenceRegistry registry;
  sncb::PopulateSncbGeofences(network, &registry);
  registry.SetIndexEnabled(state.range(0) == 1);
  // Sweep probe points across Belgium.
  std::vector<Point> probes;
  for (int i = 0; i < 64; ++i) {
    probes.push_back({2.6 + 0.05 * i, 49.5 + 0.03 * i});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.InAnyZone(probes[i++ % probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 1 ? "grid-index" : "linear-scan");
}
BENCHMARK(BM_GeofenceLookup)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();

/// \file bench_fault_tolerance.cpp
/// \brief Fault-tolerance benchmark: one placed edge→cloud query run
/// under increasing frame-loss rates. For each rate the bench verifies
/// the delivered row set is *identical* to the fault-free reference
/// (retransmit repair), then reports throughput, retransmit counts, and
/// the priced recovery latency. Writes `BENCH_faults.json`.
///
/// Usage: bench_fault_tolerance [rows] [json_path]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "nebula/engine.hpp"

using namespace nebulameos;          // NOLINT
using namespace nebulameos::nebula;  // NOLINT

namespace {

constexpr int kEdge = 2;   // train-0 in the SNCB reference topology
constexpr int kCloud = 1;  // cloud worker

Schema EventSchema() {
  return Schema::Build()
      .AddInt64("key")
      .AddTimestamp("ts")
      .AddDouble("value")
      .Finish();
}

std::vector<std::vector<Value>> MakeRows(size_t n) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value{static_cast<int64_t>(i % 16)},
                    Value{Seconds(static_cast<int64_t>(i))},
                    Value{static_cast<double>(i % 100)}});
  }
  return rows;
}

Result<LogicalPlan> MakePlan(size_t rows, std::shared_ptr<CollectSink>* sink) {
  auto plan =
      Query::From(std::make_unique<MemorySource>(EventSchema(),
                                                 MakeRows(rows), 1, "ts"))
          .Filter(Ge(Attribute("value"), Lit(10.0)))
          .Map("scaled", Mul(Attribute("value"), Lit(0.5)))
          .Build();
  if (!plan.ok()) return plan;
  NM_ASSIGN_OR_RETURN(const Schema schema, plan->OutputSchema());
  *sink = std::make_shared<CollectSink>(schema);
  plan->SetSink(*sink);
  plan->set_source_placement(kEdge);
  plan->mutable_ops()[0]->set_placement(kEdge);
  plan->mutable_ops()[1]->set_placement(kEdge);
  plan->mutable_ops()[2]->set_placement(kCloud);
  return plan;
}

struct LossRun {
  double drop_rate = 0.0;
  bool exact = false;          ///< row set identical to fault-free reference
  uint64_t rows_out = 0;
  uint64_t frames = 0;
  uint64_t frames_dropped = 0;
  uint64_t retransmits = 0;
  uint64_t wire_bytes = 0;
  double transfer_seconds = 0.0;  ///< priced, backoff included
  double events_per_second = 0.0;
  std::string health;
};

Result<LossRun> RunAtLossRate(size_t rows, double drop_rate,
                              const std::vector<std::vector<Value>>& reference) {
  const Topology topo = Topology::SncbReference(1, 1e7, Millis(1));
  std::shared_ptr<CollectSink> sink;
  NM_ASSIGN_OR_RETURN(LogicalPlan plan, MakePlan(rows, &sink));

  EngineOptions options;
  options.optimizer.enable = false;
  options.topology = &topo;
  options.tuples_per_buffer = 64;  // many frames per run
  options.faults.profile.drop_rate = drop_rate;
  options.faults.profile.reorder_rate = drop_rate / 2.0;
  options.faults.profile.seed = 0xfa017;
  NodeEngine engine(options);
  NM_ASSIGN_OR_RETURN(const int id, engine.Submit(std::move(plan)));
  NM_RETURN_NOT_OK(engine.RunToCompletion(id));
  NM_ASSIGN_OR_RETURN(const QueryStats stats, engine.Stats(id));
  NM_ASSIGN_OR_RETURN(const DeploymentReport report, engine.Deployment(id));

  LossRun run;
  run.drop_rate = drop_rate;
  std::vector<std::vector<Value>> delivered = sink->Rows();
  std::sort(delivered.begin(), delivered.end());
  run.exact = delivered == reference;
  run.rows_out = delivered.size();
  run.frames = report.frames;
  run.frames_dropped = report.frames_dropped;
  run.retransmits = report.retransmits;
  run.wire_bytes = report.wire_bytes;
  run.transfer_seconds = report.total_transfer_seconds;
  run.events_per_second = stats.EventsPerSecond();
  run.health = ToString(report.health);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  size_t rows = 200000;
  if (argc > 1) rows = std::strtoull(argv[1], nullptr, 10);
  const char* json_path = argc > 2 ? argv[2] : "BENCH_faults.json";

  // Fault-free reference row set.
  const Topology topo = Topology::SncbReference(1, 1e7, Millis(1));
  std::shared_ptr<CollectSink> ref_sink;
  auto ref_plan = MakePlan(rows, &ref_sink);
  if (!ref_plan.ok()) return 1;
  {
    EngineOptions options;
    options.optimizer.enable = false;
    options.topology = &topo;
    options.tuples_per_buffer = 64;
    NodeEngine engine(options);
    auto id = engine.Submit(std::move(*ref_plan));
    if (!id.ok() || !engine.RunToCompletion(*id).ok()) return 1;
  }
  std::vector<std::vector<Value>> reference = ref_sink->Rows();
  std::sort(reference.begin(), reference.end());

  const double loss_rates[] = {0.0, 0.01, 0.05, 0.1, 0.2};
  std::vector<LossRun> runs;
  bool all_exact = true;
  for (double rate : loss_rates) {
    auto run = RunAtLossRate(rows, rate, reference);
    if (!run.ok()) {
      std::fprintf(stderr, "run at drop=%.2f failed: %s\n", rate,
                   run.status().message().c_str());
      return 1;
    }
    all_exact = all_exact && run->exact;
    std::printf(
        "drop=%.2f  rows=%llu exact=%s  frames=%llu dropped=%llu "
        "retransmits=%llu  transfer=%.3fs  %.0f events/s  health=%s\n",
        run->drop_rate, static_cast<unsigned long long>(run->rows_out),
        run->exact ? "yes" : "NO",
        static_cast<unsigned long long>(run->frames),
        static_cast<unsigned long long>(run->frames_dropped),
        static_cast<unsigned long long>(run->retransmits),
        run->transfer_seconds, run->events_per_second,
        run->health.c_str());
    runs.push_back(*run);
  }

  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"fault_tolerance\",\n");
  std::fprintf(json, "  \"rows\": %llu,\n",
               static_cast<unsigned long long>(rows));
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const LossRun& r = runs[i];
    std::fprintf(
        json,
        "    {\"drop_rate\": %.3f, \"exact\": %s, \"rows_out\": %llu, "
        "\"frames\": %llu, \"frames_dropped\": %llu, \"retransmits\": %llu, "
        "\"wire_bytes\": %llu, \"transfer_seconds\": %.6f, "
        "\"events_per_second\": %.1f, \"health\": \"%s\"}%s\n",
        r.drop_rate, r.exact ? "true" : "false",
        static_cast<unsigned long long>(r.rows_out),
        static_cast<unsigned long long>(r.frames),
        static_cast<unsigned long long>(r.frames_dropped),
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.wire_bytes), r.transfer_seconds,
        r.events_per_second, r.health.c_str(),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);

  if (!all_exact) {
    std::fprintf(stderr,
                 "FAIL: a lossy run delivered a different row set than the "
                 "fault-free reference\n");
    return 1;
  }
  std::printf("fault tolerance: OK (%s)\n", json_path);
  return 0;
}

/// \file bench_t1_query_throughput.cpp
/// \brief Experiment T1 — the paper's §3.1/§3.2 ingestion-rate/throughput
/// report, one row per demonstration query.
///
/// The paper reports, per query: "a throughput of X MB with Y K events per
/// second". Record widths reproduce the paper's MB↔events ratios exactly
/// (records.hpp), so the MB/s : ke/s ratio per row must match the paper; the
/// absolute rates depend on the host (the authors ran an Intel Atom edge
/// device). Each query runs twice — plan optimizer on and off — so the
/// rewriter's contribution is visible per query, and the full report is
/// also written as machine-readable JSON (`BENCH_t1.json`, override with
/// argv[2]) to track the perf trajectory across PRs.

#include <cstdio>
#include <string>
#include <thread>

#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::queries;  // NOLINT

namespace {

struct Row {
  int query;
  uint64_t events;
  double seconds;
  double ke_per_s;
  double mb_per_s;
  uint64_t emitted;
  nebula::metrics::MetricsSnapshot metrics;
};

// Merges every per-operator self-time histogram (`op.*.process_micros`)
// of a snapshot into one distribution. Buckets are aligned power-of-two
// across all histograms, so the merge is exact: the result answers "how
// long does one operator invocation take in this plan", which is the
// latency-percentile summary the trajectory JSON records per query.
nebula::metrics::HistogramSnapshot MergedOpLatency(
    const nebula::metrics::MetricsSnapshot& snap) {
  nebula::metrics::HistogramSnapshot merged;
  merged.buckets.assign(nebula::metrics::kHistogramBuckets, 0);
  bool first = true;
  const std::string suffix = ".process_micros";
  for (const auto& [name, hist] : snap.histograms) {
    // Only operator self-time histograms; skip batch_rows, channel and
    // strand distributions.
    if (name.rfind("op.", 0) != 0 || name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    if (hist.count == 0) continue;
    merged.count += hist.count;
    merged.sum += hist.sum;
    merged.min = first ? hist.min : std::min(merged.min, hist.min);
    merged.max = first ? hist.max : std::max(merged.max, hist.max);
    first = false;
    for (size_t b = 0; b < hist.buckets.size(); ++b) {
      merged.buckets[b] += hist.buckets[b];
    }
  }
  return merged;
}

// Fan-out comparison: one shared-ingest DAG plan vs the same two
// workloads (Q1 alerts + Q2 noise archive) as independent submissions.
struct FanOutRows {
  uint64_t combined_ingested = 0;
  double combined_seconds = 0.0;
  uint64_t independent_ingested = 0;
  double independent_seconds = 0.0;
};

FanOutRows RunFanOutComparison(const DemoEnvironment& env,
                               uint64_t max_events) {
  FanOutRows out;
  QueryOptions options;
  options.max_events = max_events;
  options.sink = SinkMode::kCounting;
  // One DAG submission: the shared SNCB ingest prefix executes once.
  if (auto built = BuildSharedIngestFanOut(env, options); !built.ok()) {
    std::fprintf(stderr, "fan-out build failed: %s\n",
                 built.status().ToString().c_str());
  } else {
    nebula::NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    if (!id.ok()) {
      std::fprintf(stderr, "fan-out submit failed: %s\n",
                   id.status().ToString().c_str());
    } else if (Status st = engine.RunToCompletion(*id); !st.ok()) {
      std::fprintf(stderr, "fan-out run failed: %s\n", st.ToString().c_str());
    } else {
      auto stats = engine.Stats(*id);
      out.combined_ingested = stats->events_ingested;
      out.combined_seconds = static_cast<double>(stats->elapsed_micros) / 1e6;
    }
  }
  // The exact same branch workloads as two independent linear plans
  // (identical operators, separate ingests): the only difference from the
  // DAG submission is that the shared prefix runs twice.
  for (int branch : {0, 1}) {
    auto built = BuildSharedIngestBranch(env, options, branch);
    if (!built.ok()) {
      std::fprintf(stderr, "fan-out branch %d build failed: %s\n", branch,
                   built.status().ToString().c_str());
      continue;
    }
    nebula::NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    if (!id.ok() || !engine.RunToCompletion(*id).ok()) {
      std::fprintf(stderr, "fan-out branch %d run failed\n", branch);
      continue;
    }
    auto stats = engine.Stats(*id);
    out.independent_ingested += stats->events_ingested;
    out.independent_seconds +=
        static_cast<double>(stats->elapsed_micros) / 1e6;
  }
  return out;
}

// Morsel scaling: the shared-ingest fan-out plan swept over worker
// counts 1/2/4. All runs are pipelined (source on its own thread), so
// the sweep isolates what the worker pool adds: concurrent branches plus
// the hash-partitioned window suffix.
struct ThreadScaling {
  static constexpr size_t kCounts[3] = {1, 2, 4};
  double ke_per_s[3] = {0.0, 0.0, 0.0};
  double speedup_t4 = 0.0;    // ke/s at 4 workers over 1 worker
  double efficiency = 0.0;    // speedup_t4 / 4
};

ThreadScaling RunThreadSweep(const DemoEnvironment& env,
                             uint64_t max_events) {
  ThreadScaling out;
  for (size_t i = 0; i < 3; ++i) {
    QueryOptions options;
    options.max_events = max_events;
    options.sink = SinkMode::kCounting;
    auto built = BuildSharedIngestFanOut(env, options);
    if (!built.ok()) {
      std::fprintf(stderr, "thread sweep build failed: %s\n",
                   built.status().ToString().c_str());
      return out;
    }
    nebula::EngineOptions engine_options;
    engine_options.pipelined = true;
    engine_options.worker_threads = ThreadScaling::kCounts[i];
    nebula::NodeEngine engine(engine_options);
    auto id = engine.Submit(std::move(built->plan));
    if (!id.ok() || !engine.RunToCompletion(*id).ok()) {
      std::fprintf(stderr, "thread sweep run failed at %zu workers\n",
                   ThreadScaling::kCounts[i]);
      return out;
    }
    auto stats = engine.Stats(*id);
    out.ke_per_s[i] = stats->EventsPerSecond() / 1e3;
  }
  if (out.ke_per_s[0] > 0.0) {
    out.speedup_t4 = out.ke_per_s[2] / out.ke_per_s[0];
    out.efficiency = out.speedup_t4 / 4.0;
  }
  return out;
}

Row RunQuery(const DemoEnvironment& env, int number, uint64_t max_events,
             bool optimize, bool compiled = true, bool metrics = true) {
  QueryOptions options;
  options.max_events = max_events;
  options.sink = SinkMode::kCounting;
  auto built = BuildQuery(number, env, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build Q%d failed: %s\n", number,
                 built.status().ToString().c_str());
    return {number, 0, 0, 0, 0, 0, {}};
  }
  nebula::EngineOptions engine_options;
  engine_options.optimizer.enable = optimize;
  engine_options.compiled_kernels = compiled;
  engine_options.metrics_enabled = metrics;
  nebula::NodeEngine engine(engine_options);
  auto id = engine.Submit(std::move(built->plan));
  if (!id.ok() || !engine.RunToCompletion(*id).ok()) {
    std::fprintf(stderr, "run Q%d failed\n", number);
    return {number, 0, 0, 0, 0, 0, {}};
  }
  auto stats = engine.Stats(*id);
  Row row;
  row.query = number;
  row.events = stats->events_ingested;
  row.seconds = static_cast<double>(stats->elapsed_micros) / 1e6;
  row.ke_per_s = stats->EventsPerSecond() / 1e3;
  row.mb_per_s = stats->MegabytesPerSecond();
  row.emitted = stats->events_emitted;
  if (metrics) {
    if (auto snap = engine.Metrics(*id); snap.ok()) row.metrics = *snap;
  }
  return row;
}

// Collection overhead: the same query with the registry disabled vs the
// default always-on instrumentation. Records the throughput delta so the
// trajectory JSON guards the "<5% overhead" budget (CI runners are
// noisy, so the number is a trend signal, not a gate).
struct MetricsOverhead {
  double ke_per_s_off = 0.0;
  double ke_per_s_on = 0.0;
  double overhead_pct = 0.0;
};

MetricsOverhead MeasureMetricsOverhead(const DemoEnvironment& env,
                                       uint64_t max_events) {
  MetricsOverhead out;
  // Q1 (geofencing) is the widest-record, highest-rate row — the most
  // metrics-sensitive hot path. One warm-up pass, then measure.
  RunQuery(env, 1, max_events, /*optimize=*/true);
  out.ke_per_s_off = RunQuery(env, 1, max_events, /*optimize=*/true,
                              /*compiled=*/true, /*metrics=*/false)
                         .ke_per_s;
  out.ke_per_s_on = RunQuery(env, 1, max_events, /*optimize=*/true).ke_per_s;
  if (out.ke_per_s_off > 0.0) {
    out.overhead_pct =
        (out.ke_per_s_off - out.ke_per_s_on) / out.ke_per_s_off * 100.0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 400'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_t1.json";
  const std::string metrics_json_path =
      argc > 3 ? argv[3] : "BENCH_t1_metrics.json";

  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "T1: per-query ingestion rate and throughput "
      "(paper SIGMOD-Companion'25 §3.1-3.2)\n");
  std::printf("events per query: %llu (override: argv[1])\n\n",
              static_cast<unsigned long long>(events));
  std::printf(
      "%-30s %9s %9s | %9s %9s %9s %9s | %9s %9s | %8s %8s\n", "query",
      "paper", "paper", "measured", "measured", "no-opt", "interp", "ratio",
      "ratio", "elapsed", "out");
  std::printf(
      "%-30s %9s %9s | %9s %9s %9s %9s | %9s %9s | %8s %8s\n", "", "ke/s",
      "MB/s", "ke/s", "MB/s", "ke/s", "ke/s", "MB/ke", "MB/ke", "s",
      "events");
  std::printf(
      "%-30s %9s %9s | %9s %9s %9s %9s | %9s %9s | %8s %8s\n", "", "", "", "",
      "", "", "", "paper", "measured", "", "");
  std::printf("-------------------------------------------------------------"
              "--------------------------------------------------------------"
              "------\n");

  double min_speedup = 1e30, max_speedup = 0.0;
  Row optimized[9] = {}, verbatim[9] = {}, interpreted[9] = {};
  for (int q = 1; q <= 8; ++q) {
    const PaperThroughput paper = PaperReportedThroughput(q);
    optimized[q] = RunQuery(**env, q, events, /*optimize=*/true);
    verbatim[q] = RunQuery(**env, q, events, /*optimize=*/false);
    interpreted[q] = RunQuery(**env, q, events, /*optimize=*/true,
                              /*compiled=*/false);
    const Row& row = optimized[q];
    const double paper_ratio =
        paper.megabytes_per_s / paper.kilo_events_per_s;
    const double measured_ratio =
        row.ke_per_s > 0 ? row.mb_per_s / row.ke_per_s : 0.0;
    const double speedup =
        paper.kilo_events_per_s > 0 ? row.ke_per_s / paper.kilo_events_per_s
                                    : 0.0;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    std::printf(
        "%-30s %9.2f %9.2f | %9.1f %9.2f %9.1f %9.1f | %9.4f %9.4f | %8.2f"
        " %8llu\n",
        QueryName(q), paper.kilo_events_per_s, paper.megabytes_per_s,
        row.ke_per_s, row.mb_per_s, verbatim[q].ke_per_s,
        interpreted[q].ke_per_s, paper_ratio, measured_ratio, row.seconds,
        static_cast<unsigned long long>(row.emitted));
  }
  std::printf("\nShape check: the MB/ke ratio per row is fixed by the record"
              " width and must match\nthe paper's ratio exactly (0.112,"
              " 0.0763, 0.115, 0.040, 0.112). Absolute rates scale\nwith the"
              " host: this machine runs %.0fx-%.0fx faster than the paper's"
              " Intel Atom edge device.\nThe no-opt column reruns each query"
              " with the plan rewriter disabled; the interp\ncolumn reruns"
              " with compiled batch kernels disabled (tree-walking"
              " Expression::Eval\nper record — bench_hotpath_kernels"
              " isolates that gap without source-simulation cost).\n",
              min_speedup, max_speedup);

  // Fan-out: one multi-sink DAG submission (shared SNCB ingest -> alerts +
  // noise archive) against the same workloads submitted independently.
  const FanOutRows fanout = RunFanOutComparison(**env, events);
  std::printf("\nshared-ingest fan-out (alerts + archive as one DAG plan vs"
              " the same two\nworkloads submitted independently):\n");
  std::printf("  %-28s %12s %10s\n", "", "ingested", "seconds");
  std::printf("  %-28s %12llu %10.2f\n", "combined DAG plan",
              static_cast<unsigned long long>(fanout.combined_ingested),
              fanout.combined_seconds);
  std::printf("  %-28s %12llu %10.2f\n", "two independent plans",
              static_cast<unsigned long long>(fanout.independent_ingested),
              fanout.independent_seconds);
  if (fanout.combined_seconds > 0.0) {
    std::printf("  the DAG plan ingests the stream once (%.1fx fewer source"
                " events) and finishes %.2fx faster\n",
                static_cast<double>(fanout.independent_ingested) /
                    static_cast<double>(fanout.combined_ingested),
                fanout.independent_seconds / fanout.combined_seconds);
  }

  // Morsel-driven scaling on the fan-out plan: worker counts 1/2/4.
  const ThreadScaling scaling = RunThreadSweep(**env, events);
  std::printf("\nmorsel-driven scaling (fan-out plan, pipelined source,"
              " worker pool 1/2/4):\n");
  std::printf("  %-10s %12s %12s\n", "workers", "ke/s", "speedup");
  for (size_t i = 0; i < 3; ++i) {
    std::printf("  %-10zu %12.1f %12.2fx\n", ThreadScaling::kCounts[i],
                scaling.ke_per_s[i],
                scaling.ke_per_s[0] > 0
                    ? scaling.ke_per_s[i] / scaling.ke_per_s[0]
                    : 0.0);
  }
  std::printf("  scaling efficiency at 4 workers: %.2f"
              " (%u hardware threads on this host)\n",
              scaling.efficiency, std::thread::hardware_concurrency());

  // Always-on instrumentation must stay within its <5% throughput budget.
  const MetricsOverhead overhead = MeasureMetricsOverhead(**env, events);
  std::printf("\nmetrics collection overhead (Q1, registry off vs on):"
              " %.1f ke/s -> %.1f ke/s (%.2f%%)\n",
              overhead.ke_per_s_off, overhead.ke_per_s_on,
              overhead.overhead_pct);

  // Machine-readable trajectory record (one JSON object per run).
  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json,
                 "{\n  \"bench\": \"t1_query_throughput\",\n"
                 "  \"events_per_query\": %llu,\n  \"queries\": [\n",
                 static_cast<unsigned long long>(events));
    for (int q = 1; q <= 8; ++q) {
      const PaperThroughput paper = PaperReportedThroughput(q);
      const Row& row = optimized[q];
      std::fprintf(
          json,
          "    {\"query\": %d, \"name\": \"%s\", \"events\": %llu,\n"
          "     \"seconds\": %.4f, \"ke_per_s\": %.2f, \"mb_per_s\": %.3f,\n"
          "     \"ke_per_s_unoptimized\": %.2f,"
          " \"ke_per_s_interpreted\": %.2f,\n"
          "     \"events_emitted\": %llu,\n"
          "     \"paper_ke_per_s\": %.2f, \"paper_mb_per_s\": %.2f,\n"
          "     \"speedup_vs_paper\": %.2f, \"optimizer_gain\": %.4f,"
          " \"compiled_gain\": %.4f,\n",
          q, QueryName(q), static_cast<unsigned long long>(row.events),
          row.seconds, row.ke_per_s, row.mb_per_s, verbatim[q].ke_per_s,
          interpreted[q].ke_per_s,
          static_cast<unsigned long long>(row.emitted),
          paper.kilo_events_per_s, paper.megabytes_per_s,
          paper.kilo_events_per_s > 0
              ? row.ke_per_s / paper.kilo_events_per_s
              : 0.0,
          verbatim[q].ke_per_s > 0 ? row.ke_per_s / verbatim[q].ke_per_s
                                   : 0.0,
          interpreted[q].ke_per_s > 0
              ? row.ke_per_s / interpreted[q].ke_per_s
              : 0.0);
      // Operator-invocation latency distribution (all op.*.process_micros
      // histograms merged): the per-query latency summary of the run.
      const nebula::metrics::HistogramSnapshot latency =
          MergedOpLatency(row.metrics);
      std::fprintf(json,
                   "     \"op_latency_us\": {\"batches\": %llu,"
                   " \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f,"
                   " \"max\": %lld}}%s\n",
                   static_cast<unsigned long long>(latency.count),
                   latency.P50(), latency.P95(), latency.P99(),
                   static_cast<long long>(latency.max), q < 8 ? "," : "");
    }
    std::fprintf(
        json,
        "  ],\n  \"fanout\": {\"combined_ingested\": %llu,"
        " \"combined_seconds\": %.4f,\n"
        "             \"independent_ingested\": %llu,"
        " \"independent_seconds\": %.4f,\n"
        "             \"ke_per_s_t1\": %.2f, \"ke_per_s_t2\": %.2f,"
        " \"ke_per_s_t4\": %.2f,\n"
        "             \"scaling_speedup_t4\": %.3f,"
        " \"scaling_efficiency\": %.3f,\n"
        "             \"hardware_concurrency\": %u}\n",
        static_cast<unsigned long long>(fanout.combined_ingested),
        fanout.combined_seconds,
        static_cast<unsigned long long>(fanout.independent_ingested),
        fanout.independent_seconds, scaling.ke_per_s[0], scaling.ke_per_s[1],
        scaling.ke_per_s[2], scaling.speedup_t4, scaling.efficiency,
        std::thread::hardware_concurrency());
    std::fprintf(json,
                 "  ,\"metrics_overhead\": {\"ke_per_s_off\": %.2f,"
                 " \"ke_per_s_on\": %.2f, \"overhead_pct\": %.2f}\n",
                 overhead.ke_per_s_off, overhead.ke_per_s_on,
                 overhead.overhead_pct);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
  }

  // Full per-query metric snapshots (every instrument, not just the
  // merged latency summary) as a separate artifact: dashboards and
  // regression tooling diff these across PRs.
  if (FILE* json = std::fopen(metrics_json_path.c_str(), "w")) {
    std::fprintf(json,
                 "{\n  \"bench\": \"t1_query_throughput\",\n"
                 "  \"events_per_query\": %llu,\n  \"query_metrics\": {\n",
                 static_cast<unsigned long long>(events));
    for (int q = 1; q <= 8; ++q) {
      std::fprintf(json, "    \"Q%d\": %s%s\n", q,
                   optimized[q].metrics.ToJson().c_str(), q < 8 ? "," : "");
    }
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", metrics_json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", metrics_json_path.c_str());
  }

  // Second pass: offered load paced to the paper's exact rates — the
  // engine must sustain every row of the paper's report (achieved ≈ paper).
  std::printf("\npaced reproduction (sources throttled to the paper's rates,"
              " ~1.5 s per query):\n");
  std::printf("%-30s %9s %9s | %9s %9s | %9s\n", "query", "paper", "paper",
              "achieved", "achieved", "sustained");
  std::printf("%-30s %9s %9s | %9s %9s | %9s\n", "", "ke/s", "MB/s", "ke/s",
              "MB/s", "");
  std::printf("-------------------------------------------------------------"
              "-------------------\n");
  for (int q = 1; q <= 8; ++q) {
    const PaperThroughput paper = PaperReportedThroughput(q);
    QueryOptions options;
    options.sink = SinkMode::kCounting;
    options.pace_events_per_second = paper.kilo_events_per_s * 1e3;
    options.max_events =
        static_cast<uint64_t>(paper.kilo_events_per_s * 1e3 * 1.5);
    auto built = BuildQuery(q, **env, options);
    if (!built.ok()) continue;
    nebula::NodeEngine engine;
    auto id = engine.Submit(std::move(built->plan));
    if (!id.ok() || !engine.RunToCompletion(*id).ok()) continue;
    auto stats = engine.Stats(*id);
    const double achieved_ke = stats->EventsPerSecond() / 1e3;
    const bool sustained = achieved_ke >= paper.kilo_events_per_s * 0.95;
    std::printf("%-30s %9.2f %9.2f | %9.2f %9.2f | %9s\n", QueryName(q),
                paper.kilo_events_per_s, paper.megabytes_per_s, achieved_ke,
                stats->MegabytesPerSecond(), sustained ? "yes" : "NO");
  }
  std::printf("\nAt the paper's offered load every query sustains its"
              " reported rate (the engine is\nidle most of the time —"
              " headroom shown by the unpaced table above).\n");
  return 0;
}

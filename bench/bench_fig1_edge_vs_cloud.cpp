/// \file bench_fig1_edge_vs_cloud.cpp
/// \brief Experiment Fig. 1 / A3 — the architectural claim behind the
/// paper's Figure 1: running NebulaMEOS on the train's edge device and
/// shipping only results "reduces the reliance on strong or constant
/// network connections" and "lowers latency since events do not need to be
/// sent to a cloud".
///
/// Method: run Q1 (alert filtering) and Q7 (unscheduled stops) to
/// completion, take the engine's measured per-operator byte flow, and price
/// two placements on the SNCB reference topology (six trains, constrained
/// cellular uplink): (a) edge pushdown — operators on the train, results
/// ship up; (b) cloud — raw sensor stream ships up, operators run in the
/// cloud. Reports uplink bytes and transfer seconds for both.

#include <cstdio>

#include "nebula/topology.hpp"
#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT
using namespace nebulameos::queries;  // NOLINT

namespace {

void ReportQuery(const DemoEnvironment& env, int number, uint64_t events,
                 const Topology& topo) {
  QueryOptions options;
  options.max_events = events;
  options.sink = SinkMode::kCounting;
  auto built = BuildQuery(number, env, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return;
  }
  NodeEngine engine;
  auto id = engine.Submit(std::move(built->plan));
  if (!id.ok() || !engine.RunToCompletion(*id).ok()) {
    std::fprintf(stderr, "run failed\n");
    return;
  }
  auto stats = engine.Stats(*id);
  const size_t chain = stats->operator_stats.size();
  const int edge_node = 2;   // train-0
  const int cloud_node = 1;  // cloud worker

  auto pushdown = SimulateDeployment(
      topo, stats->operator_stats, stats->bytes_ingested,
      EdgePushdownPlacement(chain, edge_node, cloud_node));
  auto cloud = SimulateDeployment(
      topo, stats->operator_stats, stats->bytes_ingested,
      CloudPlacement(chain, edge_node, cloud_node));
  if (!pushdown.ok() || !cloud.ok()) {
    std::fprintf(stderr, "deployment simulation failed\n");
    return;
  }
  // The incremental placement optimizer should find a cut at least as good
  // as full pushdown.
  uint64_t optimized_bytes = 0;
  (void)OptimizeCutPlacement(stats->operator_stats, stats->bytes_ingested,
                             edge_node, cloud_node, &optimized_bytes);
  const double reduction =
      pushdown->uplink_bytes == 0
          ? static_cast<double>(cloud->uplink_bytes)
          : static_cast<double>(cloud->uplink_bytes) /
                static_cast<double>(pushdown->uplink_bytes);
  std::printf("%-28s %12.3f %12.3f %9.1fx %11.3f | %9.2f %9.2f\n",
              QueryName(number),
              static_cast<double>(cloud->uplink_bytes) / 1e6,
              static_cast<double>(pushdown->uplink_bytes) / 1e6, reduction,
              static_cast<double>(optimized_bytes) / 1e6,
              cloud->total_transfer_seconds,
              pushdown->total_transfer_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 400'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);
  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  // 1 MB/s cellular uplink with 60 ms latency per train.
  const Topology topo = Topology::SncbReference(6, 1e6, Millis(60));

  std::printf("Fig.1/A3: edge pushdown vs ship-raw-to-cloud "
              "(%llu events, 1 MB/s uplink)\n\n",
              static_cast<unsigned long long>(events));
  std::printf("%-28s %12s %12s %10s %11s | %9s %9s\n", "query", "cloud MB",
              "edge MB", "reduction", "optimal MB", "cloud s", "edge s");
  std::printf("---------------------------------------------------------------"
              "--------------------------------\n");
  ReportQuery(**env, 1, events, topo);
  ReportQuery(**env, 3, events, topo);
  ReportQuery(**env, 7, events, topo);
  std::printf(
      "\nShape check: alert-style queries are highly selective, so edge\n"
      "pushdown reduces uplink traffic by orders of magnitude (>= 10x).\n");
  return 0;
}

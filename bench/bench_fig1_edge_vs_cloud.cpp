/// \file bench_fig1_edge_vs_cloud.cpp
/// \brief Experiment Fig. 1 / A3 — the architectural claim behind the
/// paper's Figure 1: running NebulaMEOS on the train's edge device and
/// shipping only results "reduces the reliance on strong or constant
/// network connections" and "lowers latency since events do not need to be
/// sent to a cloud".
///
/// Method (end-to-end, not priced): the shared-ingest fan-out plan
/// (Q1-style alerts + Q2-style noise archive over one SNCB stream) runs
/// once unplaced to *measure* per-operator flow, then three placements of
/// the same plan execute for real on the SNCB reference topology — every
/// node transition lowered to a serializing network-channel pair:
///
///   * ship-raw      — source on the train, everything else in the cloud
///                     (the raw sensor stream crosses the uplink once);
///   * edge-pushdown — every operator on the train, sinks in the cloud;
///   * optimized     — the optimizer's placement pass chooses one cut per
///                     fan-out branch from the measured flow.
///
/// The reported uplink bytes are *measured from channel traffic*
/// (`NodeEngine::Deployment`), not priced after the fact. Results land in
/// `BENCH_fig1.json` (override with argv[2]); the process fails when edge
/// placement does not strictly beat ship-raw — the paper's headline claim.

#include <cstdio>
#include <string>

#include "queries/queries.hpp"

using namespace nebulameos;           // NOLINT
using namespace nebulameos::nebula;   // NOLINT
using namespace nebulameos::queries;  // NOLINT

namespace {

constexpr int kEdgeNode = 2;   // train-0
constexpr int kCloudNode = 1;  // cloud worker

struct VariantResult {
  std::string name;
  DeploymentReport report;
  double elapsed_seconds = 0.0;
  uint64_t events_emitted = 0;
};

// Builds the fan-out plan and brings it to the optimizer's fixpoint, so
// every variant (and the measuring run) shares one plan shape and the
// measured stats align with the placed plans operator-for-operator.
Result<LogicalPlan> BuildRewrittenPlan(const DemoEnvironment& env,
                                       uint64_t events) {
  QueryOptions options;
  options.max_events = events;
  options.sink = SinkMode::kCounting;
  NM_ASSIGN_OR_RETURN(BuiltFanOutQuery built,
                      BuildSharedIngestFanOut(env, options));
  const PlanRewriter rewriter = PlanRewriter::Default();
  NM_RETURN_NOT_OK(rewriter.Rewrite(&built.plan));
  return std::move(built.plan);
}

Result<VariantResult> RunPlaced(NodeEngine* engine, LogicalPlan plan,
                                const std::string& name) {
  VariantResult result;
  result.name = name;
  NM_ASSIGN_OR_RETURN(const int id, engine->Submit(std::move(plan)));
  NM_RETURN_NOT_OK(engine->RunToCompletion(id));
  NM_ASSIGN_OR_RETURN(const QueryStats stats, engine->Stats(id));
  NM_ASSIGN_OR_RETURN(result.report, engine->Deployment(id));
  result.elapsed_seconds = static_cast<double>(stats.elapsed_micros) / 1e6;
  result.events_emitted = stats.events_emitted;
  return result;
}

double Ratio(uint64_t num, uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t events = 400'000;
  if (argc > 1) events = std::strtoull(argv[1], nullptr, 10);
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_fig1.json";

  auto env = DemoEnvironment::Create();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }
  // 1 MB/s cellular uplink with 60 ms latency per train.
  const Topology topo = Topology::SncbReference(6, 1e6, Millis(60));

  std::printf("Fig.1/A3: placed execution of the shared-ingest fan-out "
              "(%llu events, 1 MB/s uplink)\n\n",
              static_cast<unsigned long long>(events));

  // --- Measuring run: unplaced, single node, records per-operator flow.
  EngineOptions engine_options;
  engine_options.topology = &topo;
  NodeEngine engine(engine_options);
  QueryStats measured;
  {
    auto plan = BuildRewrittenPlan(**env, events);
    if (!plan.ok()) {
      std::fprintf(stderr, "build: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    auto id = engine.Submit(std::move(*plan));
    if (!id.ok() || !engine.RunToCompletion(*id).ok()) {
      std::fprintf(stderr, "measuring run failed\n");
      return 1;
    }
    measured = *engine.Stats(*id);
  }

  // --- The three placements, executed over real network channels.
  std::vector<VariantResult> results;
  for (const std::string& name :
       {std::string("ship_raw"), std::string("edge_pushdown"),
        std::string("optimized")}) {
    auto plan = BuildRewrittenPlan(**env, events);
    if (!plan.ok()) {
      std::fprintf(stderr, "build: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    Status placed = Status::OK();
    if (name == "ship_raw") {
      AnnotateCloudPlacement(&*plan, kEdgeNode, kCloudNode);
    } else if (name == "edge_pushdown") {
      AnnotateEdgePushdownPlacement(&*plan, kEdgeNode, kCloudNode);
    } else {
      PlacementPassOptions options;
      options.topology = &topo;
      options.edge_node = kEdgeNode;
      options.cloud_node = kCloudNode;
      options.measured = measured.operator_stats;
      options.source_bytes = measured.bytes_ingested;
      bool changed = false;
      placed = MakePlacementPass(std::move(options))->Apply(&*plan, &changed);
    }
    if (!placed.ok()) {
      std::fprintf(stderr, "placement: %s\n", placed.ToString().c_str());
      return 1;
    }
    auto result = RunPlaced(&engine, std::move(*plan), name);
    if (!result.ok()) {
      std::fprintf(stderr, "%s run failed: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*result));
  }

  std::printf("%-14s %14s %14s %10s %12s %12s %10s\n", "placement",
              "uplink MB", "wire MB", "frames", "transfer s", "elapsed s",
              "emitted");
  std::printf("--------------------------------------------------------------"
              "-----------------------------\n");
  for (const VariantResult& r : results) {
    std::printf("%-14s %14.3f %14.3f %10llu %12.2f %12.2f %10llu\n",
                r.name.c_str(),
                static_cast<double>(r.report.uplink_bytes) / 1e6,
                static_cast<double>(r.report.wire_bytes) / 1e6,
                static_cast<unsigned long long>(r.report.frames),
                r.report.total_transfer_seconds, r.elapsed_seconds,
                static_cast<unsigned long long>(r.events_emitted));
  }
  const VariantResult& ship_raw = results[0];
  const VariantResult& pushdown = results[1];
  const VariantResult& optimized = results[2];
  const double reduction =
      Ratio(ship_raw.report.uplink_bytes, optimized.report.uplink_bytes);
  std::printf("\nuplink reduction, optimized vs ship-raw: %.1fx\n", reduction);

  if (FILE* json = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"fig1_edge_vs_cloud\",\n"
                 "  \"events\": %llu,\n"
                 "  \"uplink_bytes_per_sec\": 1000000,\n"
                 "  \"placements\": [\n",
                 static_cast<unsigned long long>(events));
    for (size_t i = 0; i < results.size(); ++i) {
      const VariantResult& r = results[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"uplink_bytes\": %llu, "
          "\"wire_bytes\": %llu, \"frames\": %llu, "
          "\"transfer_seconds\": %.6f, \"elapsed_seconds\": %.6f, "
          "\"events_emitted\": %llu}%s\n",
          r.name.c_str(),
          static_cast<unsigned long long>(r.report.uplink_bytes),
          static_cast<unsigned long long>(r.report.wire_bytes),
          static_cast<unsigned long long>(r.report.frames),
          r.report.total_transfer_seconds, r.elapsed_seconds,
          static_cast<unsigned long long>(r.events_emitted),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"uplink_reduction_optimized_vs_ship_raw\": %.3f\n"
                 "}\n",
                 reduction);
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }

  // The paper's claim, self-checked: pushing operators to the edge must
  // strictly beat shipping the raw stream, and the optimizer's per-branch
  // cut must be at least as good as full pushdown.
  if (pushdown.report.uplink_bytes >= ship_raw.report.uplink_bytes ||
      optimized.report.uplink_bytes >= ship_raw.report.uplink_bytes) {
    std::fprintf(stderr,
                 "FAIL: edge placement did not reduce uplink traffic\n");
    return 1;
  }
  if (optimized.report.uplink_bytes > pushdown.report.uplink_bytes) {
    std::fprintf(stderr,
                 "FAIL: optimized cut ships more than full pushdown\n");
    return 1;
  }
  return 0;
}

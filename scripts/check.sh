#!/usr/bin/env bash
# Tier-1 verify: configure + build + test in one command (ROADMAP.md).
#   scripts/check.sh [build-dir]
#
# Opt-in concurrency gate (mirrors the CI `sanitize-thread` job):
#   CHECK_TSAN=1 scripts/check.sh
# builds Debug + ThreadSanitizer into build-tsan/ and runs the full
# suite with NM_WORKER_THREADS=4, forcing every engine test through the
# morsel-driven multi-core path under the race detector.
#
# Opt-in fault-injection gate (mirrors the CI `fault-injection` job):
#   CHECK_FAULTS=1 scripts/check.sh
# runs the full suite with NM_FAULT_PROFILE armed (default: 1% drop,
# 0.5% reorder, seeded), so every lowered network channel injects
# deterministic faults the retransmit/reorder-repair machinery must
# recover from, then runs bench_fault_tolerance and leaves
# BENCH_faults.json in the repo root (CI artifact). Override the profile
# via NM_FAULT_PROFILE.
#
# Opt-in static-analysis gate (mirrors the CI `static-analysis` job):
#   CHECK_STATIC=1 scripts/check.sh
# builds Debug with clang and -Wthread-safety -Werror (enforcing the
# NM_GUARDED_BY/NM_REQUIRES annotations), runs clang-tidy over src/ per
# .clang-tidy, and runs the full suite with NM_VERIFY_EACH=1 so the
# plan/pipeline verifiers check every rewrite pass and compiled plan.
# Without clang installed it degrades to the verify-each Debug ctest run
# (the annotations and tidy checks then only run in CI).
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${CHECK_STATIC:-0}" == "1" ]]; then
  BUILD_DIR="${1:-build-static}"
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_COMPILER=clang++
  else
    echo "check.sh: clang++ not found — thread-safety analysis skipped," \
         "running the Debug verify-each suite with the default compiler" >&2
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Debug
  fi
  cmake --build "$BUILD_DIR" -j
  if command -v clang-tidy >/dev/null 2>&1; then
    mapfile -t TIDY_FILES < <(git ls-files 'src/*.cpp')
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p "$BUILD_DIR" -quiet "${TIDY_FILES[@]}"
    else
      clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_FILES[@]}"
    fi
  else
    echo "check.sh: clang-tidy not found — tidy checks skipped" >&2
  fi
  cd "$BUILD_DIR" && NM_VERIFY_EACH=1 ctest --output-on-failure -j
  exit 0
fi

if [[ "${CHECK_FAULTS:-0}" == "1" ]]; then
  BUILD_DIR="${1:-build}"
  PROFILE="${NM_FAULT_PROFILE:-drop=0.01,reorder=0.005,seed=20250808}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  (cd "$BUILD_DIR" && NM_FAULT_PROFILE="$PROFILE" ctest --output-on-failure -j)
  # Loss-rate sweep: asserts lossy row sets match the fault-free
  # reference exactly; leaves BENCH_faults.json in the repo root.
  env -u NM_FAULT_PROFILE "$BUILD_DIR"/bench/bench_fault_tolerance 200000 \
    BENCH_faults.json
  echo "fault injection gate: OK (profile: $PROFILE)"
  exit 0
fi

if [[ "${CHECK_TSAN:-0}" == "1" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
  cmake --build "$BUILD_DIR" -j
  cd "$BUILD_DIR" && NM_WORKER_THREADS=4 ctest --output-on-failure -j
  exit 0
fi

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR" && ctest --output-on-failure -j

# Observability smoke: run one query with the rate sampler enabled and
# require a populated metrics snapshot (the example exits non-zero when
# the ingest counter, operator histograms or strand gauges are missing;
# the grep pins the JSON export format end-to-end).
./examples/example_metrics_observability | grep -q '"engine.events_ingested"'
echo "metrics smoke: OK"

# Fleet serving smoke: the shared-query manager must collapse K queries
# per train onto one host (queries-per-node ~3) and ship the uplink
# stream once instead of K times — both are asserted by the bench itself,
# which also leaves BENCH_fleet.json in the repo root (CI artifact).
./bench/bench_fleet_serving 400 ../BENCH_fleet.json
./examples/example_fleet_serving | grep -q 'fleet serving: OK'
echo "fleet serving smoke: OK"

#!/usr/bin/env bash
# Perf trajectory one-liner: build and run the T1 throughput bench,
# leaving BENCH_t1.json in the repo root (CI uploads it as an artifact).
#   scripts/bench.sh [events-per-query] [json-path]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
EVENTS="${1:-400000}"
JSON="${2:-BENCH_t1.json}"

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j --target bench_t1_query_throughput > /dev/null
"$BUILD_DIR/bench/bench_t1_query_throughput" "$EVENTS" "$JSON"

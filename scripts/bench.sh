#!/usr/bin/env bash
# Perf trajectory one-liner: build and run the T1 throughput bench, the
# Fig.1 placed edge-vs-cloud bench, and the hot-path kernel microbench,
# leaving BENCH_t1.json (+ BENCH_t1_metrics.json, the full per-query
# metric snapshots), BENCH_fig1.json and BENCH_hotpath.json in the repo
# root (CI uploads all four as artifacts).
#   scripts/bench.sh [events-per-query] [t1-json] [fig1-json] [hotpath-json]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
EVENTS="${1:-400000}"
JSON="${2:-BENCH_t1.json}"
FIG1_JSON="${3:-BENCH_fig1.json}"
HOTPATH_JSON="${4:-BENCH_hotpath.json}"
METRICS_JSON="${JSON%.json}_metrics.json"

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j \
  --target bench_t1_query_throughput --target bench_fig1_edge_vs_cloud \
  --target bench_hotpath_kernels \
  > /dev/null
"$BUILD_DIR/bench/bench_t1_query_throughput" "$EVENTS" "$JSON" "$METRICS_JSON"
"$BUILD_DIR/bench/bench_fig1_edge_vs_cloud" "$EVENTS" "$FIG1_JSON"
"$BUILD_DIR/bench/bench_hotpath_kernels" "$HOTPATH_JSON"

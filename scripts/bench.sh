#!/usr/bin/env bash
# Perf trajectory one-liner: build and run the T1 throughput bench and the
# Fig.1 placed edge-vs-cloud bench, leaving BENCH_t1.json and
# BENCH_fig1.json in the repo root (CI uploads both as artifacts).
#   scripts/bench.sh [events-per-query] [t1-json-path] [fig1-json-path]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
EVENTS="${1:-400000}"
JSON="${2:-BENCH_t1.json}"
FIG1_JSON="${3:-BENCH_fig1.json}"

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j \
  --target bench_t1_query_throughput --target bench_fig1_edge_vs_cloud \
  > /dev/null
"$BUILD_DIR/bench/bench_t1_query_throughput" "$EVENTS" "$JSON"
"$BUILD_DIR/bench/bench_fig1_edge_vs_cloud" "$EVENTS" "$FIG1_JSON"
